"""Differential suite for the batched ODE core (repro.ode.batch).

Three layers of pins:

1. **Kernel bit-identity** — the lockstep fixed-grid RK4 kernels must
   reproduce the scalar integrators *bit for bit*, lane by lane, across
   the whole model catalog (ascending and descending grids, controlled
   and uncontrolled, padded heterogeneous lane lengths).
2. **Adaptive accuracy** — ``dopri_batch`` must match scipy's
   ``solve_ivp`` (same Dormand–Prince 5(4) pair) to integration
   tolerance, including lane retirement and dense output.
3. **Consumer equality** — the rewired consumers (lane-parallel
   Pontryagin bounds, adaptive envelope sweep, batched steady-state
   fixed points, hullbox settle) must agree with their scalar paths.

CI runs this file with ``-rs`` and fails if anything here skips.
"""

import numpy as np
import pytest

from repro.bounds import pontryagin_transient_bounds, uncertain_envelope
from repro.bounds.pontryagin import extremal_trajectories_batch, extremal_trajectory
from repro.models import (
    make_cdn_cache_model,
    make_gossip_model,
    make_gps_poisson_model,
    make_power_of_d_model,
    make_repairable_queue_model,
    make_seir_model,
    make_sir_full_model,
    make_sir_model,
)
from repro.ode import (
    FixedPointBatch,
    TrajectoryBatch,
    dopri_batch,
    find_fixed_point,
    find_fixed_point_batch,
    pad_grids,
    rk4_integrate,
    rk4_integrate_batch,
    rk4_integrate_controlled,
    rk4_integrate_controlled_batch,
    solve_ode,
)
from repro.steadystate import hull_steady_rectangle, uncertain_fixed_points

CATALOG = [
    make_sir_model,
    make_sir_full_model,
    make_seir_model,
    make_gossip_model,
    make_repairable_queue_model,
    make_cdn_cache_model,
    make_gps_poisson_model,
    make_power_of_d_model,
]


def _interior_states(model, rng, n):
    lo = model.state_lower if model.state_lower is not None else np.zeros(model.dim)
    hi = model.state_upper if model.state_upper is not None else np.ones(model.dim)
    return lo + rng.uniform(0.15, 0.85, size=(n, model.dim)) * (hi - lo)


# ----------------------------------------------------------------------
# 1. Fixed-grid kernels: bit-identical to the scalar loop
# ----------------------------------------------------------------------

class TestLockstepRK4BitIdentity:
    @pytest.mark.parametrize("factory", CATALOG)
    def test_uncontrolled_matches_scalar_per_lane(self, factory, rng):
        model = factory()
        thetas = model.theta_set.sample(rng, 4)
        x0 = _interior_states(model, rng, 4)
        grid = np.linspace(0.0, 1.5, 61)

        batch = rk4_integrate_batch(
            lambda t, X: model.drift_batch(X, thetas), x0, grid
        )
        for l in range(4):
            scalar = rk4_integrate(model.vector_field(thetas[l]), x0[l], grid)
            np.testing.assert_array_equal(batch.states[l], scalar.states)
            np.testing.assert_array_equal(batch.lane(l).times, scalar.times)

    @pytest.mark.parametrize("factory", CATALOG)
    def test_descending_grid_matches_scalar(self, factory, rng):
        model = factory()
        thetas = model.theta_set.sample(rng, 3)
        x0 = _interior_states(model, rng, 3)
        # Short span: mean-field drifts are unstable backward in time,
        # and a diverging stack would drown the comparison in overflow.
        grid = np.linspace(0.25, 0.0, 41)
        batch = rk4_integrate_batch(
            lambda t, X: model.drift_batch(X, thetas), x0, grid
        )
        for l in range(3):
            scalar = rk4_integrate(model.vector_field(thetas[l]), x0[l], grid)
            np.testing.assert_array_equal(batch.states[l], scalar.states)

    @pytest.mark.parametrize("factory", CATALOG)
    def test_controlled_matches_scalar_per_lane(self, factory, rng):
        model = factory()
        x0 = _interior_states(model, rng, 3)
        grid = np.linspace(0.0, 1.0, 41)
        # A different piecewise-constant parameter signal per lane.
        controls = np.stack([
            model.theta_set.sample(rng, 40) for _ in range(3)
        ])

        def dynamics(t, X, U):
            return model.drift_batch(X, U)

        batch = rk4_integrate_controlled_batch(dynamics, x0, grid, controls)
        for l in range(3):
            scalar = rk4_integrate_controlled(
                lambda t, y, u: model.drift(y, u), x0[l], grid, controls[l]
            )
            np.testing.assert_array_equal(batch.states[l], scalar.states)

    def test_padded_heterogeneous_grids(self, sir_model, rng):
        thetas = sir_model.theta_set.sample(rng, 3)
        grids = [np.linspace(0.0, h, n + 1)
                 for h, n in ((0.5, 30), (2.0, 80), (1.0, 50))]
        T, steps = pad_grids(grids)
        x0 = np.tile([0.7, 0.3], (3, 1))
        batch = rk4_integrate_batch(
            lambda t, X: sir_model.drift_batch(X, thetas), x0, T,
            lane_steps=steps,
        )
        for l, grid in enumerate(grids):
            scalar = rk4_integrate(sir_model.vector_field(thetas[l]),
                                   x0[l], grid)
            np.testing.assert_array_equal(batch.lane(l).states, scalar.states)
            np.testing.assert_array_equal(batch.final_states[l],
                                          scalar.final_state)
            # Padding columns freeze at the lane's own final state.
            np.testing.assert_array_equal(
                batch.states[l, len(grid):],
                np.tile(scalar.final_state, (T.shape[1] - len(grid), 1)),
            )

    def test_input_validation(self):
        f = lambda t, X: -X
        with pytest.raises(ValueError):
            rk4_integrate_batch(f, np.zeros((2, 1)), [0.0])
        with pytest.raises(ValueError):
            rk4_integrate_batch(f, np.zeros((2, 1)), [0.0, 1.0, 0.5])
        with pytest.raises(ValueError):
            rk4_integrate_batch(f, np.zeros((2, 1)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            rk4_integrate_controlled_batch(
                lambda t, X, U: -X, np.zeros((2, 1)),
                np.linspace(0, 1, 11), np.zeros((2, 5, 1)),
            )


# ----------------------------------------------------------------------
# 2. Adaptive Dormand–Prince vs scipy
# ----------------------------------------------------------------------

class TestDopriBatch:
    @pytest.mark.parametrize("factory", CATALOG)
    def test_matches_solve_ivp_within_tolerance(self, factory, rng):
        model = factory()
        thetas = model.theta_set.sample(rng, 5)
        x0 = _interior_states(model, rng, 1)[0]
        t_eval = np.linspace(0.0, 2.0, 9)
        sol = dopri_batch(
            lambda t, X, TH: model.drift_batch(X, TH),
            np.tile(x0, (5, 1)), (0.0, 2.0), t_eval=t_eval,
            rtol=1e-8, atol=1e-10, lane_args=thetas,
        )
        for l in range(5):
            ref = solve_ode(model.vector_field(thetas[l]), x0, (0.0, 2.0),
                            t_eval=t_eval, rtol=1e-10, atol=1e-12)
            np.testing.assert_allclose(sol.states[l], ref.states,
                                       rtol=1e-5, atol=1e-6)

    def test_per_lane_end_times_and_retirement(self):
        f = lambda t, X: -X
        x0 = np.ones((3, 2))
        ends = np.array([1.0, 2.0, 3.0])
        sol = dopri_batch(f, x0, (0.0, ends), rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(sol.final_states[:, 0], np.exp(-ends),
                                   rtol=1e-8)
        np.testing.assert_allclose(sol.final_times, ends)
        stats = sol.stats
        # The lane ending at t = 1 must have consumed fewer steps than
        # the one running to t = 3.
        assert stats["n_accepted"][0] < stats["n_accepted"][2]

    def test_dense_output_clamps_past_lane_end(self):
        f = lambda t, X: -X
        t_eval = np.linspace(0.0, 3.0, 7)
        sol = dopri_batch(f, np.ones((2, 1)), (0.0, np.array([1.0, 3.0])),
                          t_eval=t_eval)
        # Lane 0 retired at t = 1; later samples hold its final state.
        late = t_eval > 1.0
        np.testing.assert_allclose(sol.states[0, late, 0],
                                   np.exp(-1.0), rtol=1e-8)

    def test_descending_integration(self):
        f = lambda t, X: -X
        t_eval = np.linspace(0.0, -2.0, 9)
        sol = dopri_batch(f, np.ones((1, 1)), (0.0, -2.0), t_eval=t_eval)
        np.testing.assert_allclose(sol.states[0, :, 0], np.exp(-t_eval),
                                   rtol=1e-6)

    def test_stiffness_guard_raises(self):
        # A discontinuous RHS collapses the adaptive step size; the
        # solver must fail loudly instead of spinning.
        f = lambda t, X: np.where(X > 0.5, -1e6, 1e6) * np.ones_like(X)
        with pytest.raises(RuntimeError):
            dopri_batch(f, np.full((1, 1), 0.5), (0.0, 1.0), max_steps=200)

    def test_mixed_direction_end_times_rejected(self):
        with pytest.raises(ValueError):
            dopri_batch(lambda t, X: -X, np.ones((2, 1)),
                        (0.0, np.array([1.0, -1.0])))

    def test_single_point_t_eval_keeps_shape(self):
        sol = dopri_batch(lambda t, X: -X, np.ones((3, 1)), (0.0, 2.0),
                          t_eval=np.array([1.0]))
        assert sol.states.shape == (3, 1, 1)
        np.testing.assert_allclose(sol.states[:, 0, 0], np.exp(-1.0),
                                   rtol=1e-6)
        # The recorded batch is the sampled trajectory; the integration
        # endpoints live in stats.
        np.testing.assert_allclose(sol.stats["final_states"][:, 0],
                                   np.exp(-2.0), rtol=1e-8)

    def test_zero_span_lane(self):
        sol = dopri_batch(lambda t, X: -X, np.ones((2, 1)),
                          (0.0, np.array([0.0, 1.0])),
                          t_eval=np.linspace(0.0, 1.0, 5))
        np.testing.assert_allclose(sol.states[0], 1.0)
        np.testing.assert_allclose(sol.final_states[1, 0], np.exp(-1.0),
                                   rtol=1e-8)


# ----------------------------------------------------------------------
# 3. Batched fixed points
# ----------------------------------------------------------------------

class TestFindFixedPointBatch:
    def test_matches_scalar_settles(self, sir_model):
        thetas = sir_model.theta_set.grid(7)
        guess = np.array([0.5, 0.5])
        batch = find_fixed_point_batch(
            lambda X, TH: sir_model.drift_batch(X, TH),
            np.tile(guess, (thetas.shape[0], 1)),
            settle_time=60.0, lane_args=thetas,
        )
        assert isinstance(batch, FixedPointBatch)
        assert batch.converged.all()
        for l, theta in enumerate(thetas):
            scalar = find_fixed_point(sir_model.drift_fn(theta), guess,
                                      settle_time=60.0)
            np.testing.assert_allclose(batch.points[l], scalar, atol=1e-9)
        assert np.all(batch.residuals < 1e-10)

    def test_limit_cycle_raises(self):
        def rotate(X):
            return np.stack([X[:, 1], -X[:, 0]], axis=1)

        with pytest.raises(RuntimeError, match="fixed point"):
            find_fixed_point_batch(rotate, np.array([[1.0, 0.0]]),
                                   settle_time=10.0, max_rounds=2)

    def test_polish_rejection_keeps_settled_point(self):
        # Flat plateau near 0 with the only root far away: the Newton
        # polish must not yank the lane to the far root.
        def f(X):
            return np.where(np.abs(X) < 1.0, 1e-7 * np.ones_like(X),
                            10.0 - X)

        fp = find_fixed_point_batch(f, np.zeros((1, 1)), settle_time=1.0,
                                    max_rounds=1)
        assert abs(fp.points[0, 0]) < 1.0
        assert not fp.converged[0]  # residual 1e-7 > default tol


# ----------------------------------------------------------------------
# 4. Consumer-level equality
# ----------------------------------------------------------------------

class TestConsumersMatchScalarPaths:
    def test_single_lane_matches_cold_scalar_sweep(self, sir_model, sir_x0):
        """One lane == the scalar sweep, iteration for iteration."""
        lane = extremal_trajectories_batch(
            sir_model, sir_x0, [([0.0, 1.0], True, 2.0, 150)]
        )[0]
        scalar = extremal_trajectory(sir_model, sir_x0, 2.0, [0.0, 1.0],
                                     n_steps=150)
        assert lane.iterations == scalar.iterations
        assert lane.converged == scalar.converged
        assert lane.value == pytest.approx(scalar.value, rel=1e-12, abs=1e-14)
        np.testing.assert_allclose(lane.controls, scalar.controls,
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(lane.states, scalar.states,
                                   rtol=1e-9, atol=1e-12)

    def test_pontryagin_bounds_lane_vs_scalar(self, sir_model, sir_x0):
        horizons = np.array([0.5, 1.25, 2.0])
        lanes = pontryagin_transient_bounds(
            sir_model, sir_x0, horizons, observables=["I"],
            steps_per_unit=60.0,
        )
        scalar = pontryagin_transient_bounds(
            sir_model, sir_x0, horizons, observables=["I"],
            steps_per_unit=60.0, lanes=False,
        )
        np.testing.assert_allclose(lanes.lower["I"], scalar.lower["I"],
                                   rtol=3e-4, atol=1e-8)
        np.testing.assert_allclose(lanes.upper["I"], scalar.upper["I"],
                                   rtol=3e-4, atol=1e-8)

    def test_pontryagin_lane_mode_multiobservable_sides(self, gps_poisson):
        from repro.models import gps_initial_state_poisson

        x0 = gps_initial_state_poisson()
        horizons = np.array([1.0, 2.0])
        lanes = pontryagin_transient_bounds(
            gps_poisson, x0, horizons, observables=["Q1", "Q2"],
            steps_per_unit=40.0, sides=("upper",),
        )
        scalar = pontryagin_transient_bounds(
            gps_poisson, x0, horizons, observables=["Q1", "Q2"],
            steps_per_unit=40.0, sides=("upper",), lanes=False,
        )
        for name in ("Q1", "Q2"):
            assert np.all(np.isnan(lanes.lower[name]))
            np.testing.assert_allclose(lanes.upper[name],
                                       scalar.upper[name],
                                       rtol=3e-4, atol=1e-8)

    def test_pontryagin_keep_results_in_lane_mode(self, sir_model, sir_x0):
        horizons = np.array([0.5, 1.0])
        bounds = pontryagin_transient_bounds(
            sir_model, sir_x0, horizons, observables=["I"],
            steps_per_unit=60.0, keep_results=True,
        )
        assert len(bounds.upper_results["I"]) == 2
        for k, result in enumerate(bounds.upper_results["I"]):
            assert result.times[-1] == pytest.approx(horizons[k])
            assert result.value == pytest.approx(bounds.upper["I"][k])

    @pytest.mark.parametrize("factory", [make_sir_model, make_gps_poisson_model])
    def test_envelope_adaptive_batch_vs_scipy(self, factory, rng):
        model = factory()
        x0 = _interior_states(model, rng, 1)[0]
        t_eval = np.linspace(0.0, 2.0, 7)
        batch = uncertain_envelope(model, x0, t_eval, resolution=5)
        scalar = uncertain_envelope(model, x0, t_eval, resolution=5,
                                    batch=False)
        for name in batch.observable_names:
            np.testing.assert_allclose(batch.lower[name], scalar.lower[name],
                                       rtol=1e-6, atol=1e-6)
            np.testing.assert_allclose(batch.upper[name], scalar.upper[name],
                                       rtol=1e-6, atol=1e-6)

    def test_envelope_rk4_batch_still_bit_identical(self, sir_model):
        t_eval = np.linspace(0.0, 1.5, 7)
        batch = uncertain_envelope(sir_model, [0.7, 0.3], t_eval,
                                   resolution=5, integrator="rk4")
        scalar = uncertain_envelope(sir_model, [0.7, 0.3], t_eval,
                                    resolution=5, integrator="rk4",
                                    batch=False)
        for name in batch.observable_names:
            np.testing.assert_array_equal(batch.lower[name],
                                          scalar.lower[name])
            np.testing.assert_array_equal(batch.upper[name],
                                          scalar.upper[name])

    def test_uncertain_fixed_points_batch_vs_scalar(self, sir_model):
        batch = uncertain_fixed_points(sir_model, resolution=9)
        scalar = uncertain_fixed_points(sir_model, resolution=9, batch=False)
        np.testing.assert_allclose(batch, scalar, atol=1e-8)

    def test_hullbox_settle_refines_rectangle(self):
        model = make_sir_model(theta_max=2.0)
        settled = hull_steady_rectangle(model, [0.7, 0.3], horizon=120.0)
        integrated = hull_steady_rectangle(model, [0.7, 0.3], horizon=120.0,
                                           settle=False)
        assert settled.converged and integrated.converged
        # The settled rectangle is the exact hull fixed point: its field
        # residual is at Newton level, far below the integration tail's.
        assert settled.residual < 1e-10
        np.testing.assert_allclose(settled.lower, integrated.lower, atol=1e-5)
        np.testing.assert_allclose(settled.upper, integrated.upper, atol=1e-5)
        # Soundness: the hull pair approaches its stationary rectangle
        # from the inside, so settling cannot *shrink* it beyond solver
        # noise on an already-converged integration.
        assert np.all(settled.lower <= integrated.lower + 1e-7)
        assert np.all(settled.upper >= integrated.upper - 1e-7)

    def test_hullbox_divergent_hull_unchanged_by_settle(self):
        model = make_sir_model()  # theta in [1, 10]: trivial-hull regime
        rect = hull_steady_rectangle(model, [0.7, 0.3], horizon=40.0)
        assert not rect.converged
        assert np.isinf(rect.residual)


class TestTrajectoryBatchContainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryBatch(np.zeros(3), np.zeros((1, 3, 2)), np.array([2]))
        with pytest.raises(ValueError):
            TrajectoryBatch(np.zeros((2, 3)), np.zeros((1, 3, 2)),
                            np.array([2]))
        with pytest.raises(ValueError):
            TrajectoryBatch(np.zeros((1, 3)), np.zeros((1, 3, 2)),
                            np.array([2, 2]))

    def test_lane_accessors(self):
        times = np.array([[0.0, 1.0, 2.0], [0.0, 0.5, 0.5]])
        states = np.arange(12, dtype=float).reshape(2, 3, 2)
        tb = TrajectoryBatch(times, states, np.array([2, 1]))
        assert len(tb) == 2 and tb.dim == 2
        np.testing.assert_array_equal(tb.final_times, [2.0, 0.5])
        np.testing.assert_array_equal(tb.final_states[1], states[1, 1])
        lane = tb.lane(1)
        assert len(lane) == 2
        np.testing.assert_array_equal(lane.states, states[1, :2])


class TestBackendDifferential:
    """The same integrations routed through each installed backend.

    The numpy parameter must be bit-identical to the direct call (the
    seam's numpy kernels *are* the reference expressions); compiled
    backends are pinned at tolerance by ``assert_backend_close``.
    """

    def _field(self, model):
        def field(t, X):
            return model.drift_batch(X, np.full((X.shape[0], 1), 2.0))
        return field

    def test_rk4_lockstep(self, sir_model, rng, backend_name,
                          assert_backend_close):
        X0 = rng.uniform(0.05, 0.6, size=(5, 2))
        t_eval = np.linspace(0.0, 2.0, 33)
        reference = rk4_integrate_batch(self._field(sir_model), X0, t_eval)
        routed = rk4_integrate_batch(self._field(sir_model), X0, t_eval,
                                     backend=backend_name)
        assert_backend_close(routed.states, reference.states)

    def test_rk4_controlled(self, sir_model, rng, backend_name,
                            assert_backend_close):
        X0 = rng.uniform(0.05, 0.6, size=(4, 2))
        t_eval = np.linspace(0.0, 1.5, 21)
        controls = rng.uniform(1.0, 5.0, size=(4, t_eval.shape[0] - 1, 1))

        def dynamics(t, X, U):
            return sir_model.drift_batch(X, U)

        reference = rk4_integrate_controlled_batch(dynamics, X0, t_eval,
                                                   controls)
        routed = rk4_integrate_controlled_batch(dynamics, X0, t_eval,
                                                controls,
                                                backend=backend_name)
        assert_backend_close(routed.states, reference.states)

    def test_dopri_adaptive(self, sir_model, rng, backend_name,
                            assert_backend_close):
        X0 = rng.uniform(0.05, 0.6, size=(4, 2))
        t_eval = np.linspace(0.0, 2.0, 9)
        reference = dopri_batch(self._field(sir_model), X0, t_eval)
        routed = dopri_batch(self._field(sir_model), X0, t_eval,
                             backend=backend_name)
        assert_backend_close(routed.states, reference.states)

    def test_envelope_through_backend(self, sir_model, sir_x0, backend_name,
                                      assert_backend_close):
        times = np.linspace(0.0, 1.0, 5)
        reference = uncertain_envelope(sir_model, sir_x0, times, resolution=3)
        routed = uncertain_envelope(sir_model, sir_x0, times, resolution=3,
                                    backend=backend_name)
        for name in reference.observable_names:
            assert_backend_close(routed.lower[name], reference.lower[name])
            assert_backend_close(routed.upper[name], reference.upper[name])
