"""Unit tests for the ODE substrate (repro.ode)."""

import numpy as np
import pytest

from repro.ode import (
    Trajectory,
    find_fixed_point,
    rk4_integrate,
    rk4_integrate_controlled,
    rk4_step,
    solve_ode,
)


class TestTrajectory:
    def test_shapes_and_accessors(self):
        traj = Trajectory(np.linspace(0, 1, 5), np.arange(10).reshape(5, 2))
        assert traj.dim == 2
        assert len(traj) == 5
        assert traj.t0 == 0.0
        assert traj.t_final == 1.0
        np.testing.assert_allclose(traj.final_state, [8, 9])

    def test_1d_states_promoted(self):
        traj = Trajectory([0.0, 1.0], [1.0, 2.0])
        assert traj.dim == 1

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([0.0, 1.0], np.zeros((3, 2)))

    def test_interpolation_scalar_and_array(self):
        traj = Trajectory([0.0, 1.0], [[0.0, 0.0], [2.0, 4.0]])
        np.testing.assert_allclose(traj(0.5), [1.0, 2.0])
        out = traj([0.25, 0.75])
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out[0], [0.5, 1.0])

    def test_component(self):
        traj = Trajectory([0.0, 1.0], [[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(traj.component(1), [2.0, 4.0])

    def test_restricted(self):
        traj = Trajectory(np.linspace(0, 1, 11), np.zeros((11, 1)))
        sub = traj.restricted(0.3, 0.7)
        assert sub.t0 >= 0.3 and sub.t_final <= 0.7
        with pytest.raises(ValueError):
            traj.restricted(2.0, 3.0)

    def test_reversed_time(self):
        traj = Trajectory([1.0, 0.0], [[1.0], [0.0]])
        rev = traj.reversed_time()
        assert rev.times[0] == 0.0 and rev.times[-1] == 1.0

    def test_interpolation_matches_interp_on_ascending_grid(self, rng):
        times = np.sort(rng.uniform(0.0, 5.0, 9))
        states = rng.normal(size=(9, 3))
        traj = Trajectory(times, states)
        queries = np.concatenate([[times[0] - 1.0, times[-1] + 1.0],
                                  rng.uniform(0.0, 5.0, 20), times])
        out = traj(queries)
        for j in range(3):
            np.testing.assert_allclose(
                out[:, j], np.interp(queries, times, states[:, j]),
                rtol=0, atol=1e-13,
            )

    def test_decreasing_time_interpolation(self):
        # Regression: backward costate solves produce decreasing-time
        # trajectories; np.interp silently returns garbage for
        # decreasing xp, so evaluation must run on the reversed view.
        traj = Trajectory([2.0, 1.0, 0.0], [[4.0, 0.0], [1.0, 1.0],
                                            [0.0, 2.0]])
        np.testing.assert_allclose(traj(1.5), [2.5, 0.5])
        np.testing.assert_allclose(traj(0.5), [0.5, 1.5])
        # Matches the explicitly-reversed trajectory everywhere.
        rev = traj.reversed_time()
        queries = np.linspace(-0.5, 2.5, 13)
        np.testing.assert_allclose(traj(queries), rev(queries),
                                   rtol=0, atol=1e-14)

    def test_decreasing_time_clamps_to_endpoints(self):
        traj = Trajectory([1.0, 0.0], [[5.0], [3.0]])
        np.testing.assert_allclose(traj(2.0), [5.0])
        np.testing.assert_allclose(traj(-1.0), [3.0])

    def test_scalar_query_returns_vector(self):
        traj = Trajectory([0.0, 1.0], [[0.0, 1.0], [2.0, 3.0]])
        out = traj(0.5)
        assert out.shape == (2,)

    def test_duplicate_times_resolve_like_interp(self):
        # Regression: a zero-span lane's [t0, t0] grid must not divide
        # to NaN; ties resolve to the right-hand sample, as np.interp
        # does.
        traj = Trajectory([0.0, 0.0], [[1.0], [2.0]])
        np.testing.assert_allclose(traj(0.0), [2.0])
        stepped = Trajectory([0.0, 1.0, 1.0, 2.0],
                             [[0.0], [1.0], [5.0], [6.0]])
        np.testing.assert_allclose(
            stepped([0.5, 1.0, 1.5]).ravel(),
            np.interp([0.5, 1.0, 1.5], stepped.times, stepped.states[:, 0]),
        )


class TestRK4:
    def test_step_exact_for_cubic(self):
        # RK4 integrates polynomials of degree <= 3 in t exactly.
        f = lambda t, x: np.array([3 * t**2])
        out = rk4_step(f, 0.0, np.array([0.0]), 1.0)
        np.testing.assert_allclose(out, [1.0], atol=1e-14)

    def test_exponential_accuracy(self):
        f = lambda t, x: -x
        traj = rk4_integrate(f, [1.0], np.linspace(0, 1, 101))
        assert traj.final_state[0] == pytest.approx(np.exp(-1.0), abs=1e-9)

    def test_backward_integration(self):
        f = lambda t, x: -x
        fwd = rk4_integrate(f, [1.0], np.linspace(0, 1, 101))
        back = rk4_integrate(f, fwd.final_state, np.linspace(1, 0, 101))
        assert back.final_state[0] == pytest.approx(1.0, abs=1e-9)

    def test_convergence_order(self):
        # Halving the step should reduce the error by ~2^4.
        f = lambda t, x: np.array([x[0] * np.cos(t)])
        exact = np.exp(np.sin(2.0))
        errors = []
        for n in (20, 40):
            traj = rk4_integrate(f, [1.0], np.linspace(0, 2, n + 1))
            errors.append(abs(traj.final_state[0] - exact))
        order = np.log2(errors[0] / errors[1])
        assert order > 3.5

    def test_grid_validation(self):
        f = lambda t, x: x
        with pytest.raises(ValueError):
            rk4_integrate(f, [1.0], [0.0])
        with pytest.raises(ValueError):
            rk4_integrate(f, [1.0], [0.0, 1.0, 0.5])


class TestControlledRK4:
    def test_piecewise_control_applied(self):
        # x' = u with u = 1 then u = -1: triangle wave.
        f = lambda t, x, u: np.array([u[0]])
        grid = np.linspace(0, 2, 201)
        controls = np.where(grid[:-1] < 1.0, 1.0, -1.0)
        traj = rk4_integrate_controlled(f, [0.0], grid, controls)
        assert traj(1.0)[0] == pytest.approx(1.0, abs=1e-9)
        assert traj.final_state[0] == pytest.approx(0.0, abs=1e-9)

    def test_vector_controls(self):
        f = lambda t, x, u: u
        grid = np.linspace(0, 1, 11)
        controls = np.tile([1.0, 2.0], (10, 1))
        traj = rk4_integrate_controlled(f, [0.0, 0.0], grid, controls)
        np.testing.assert_allclose(traj.final_state, [1.0, 2.0], atol=1e-12)

    def test_control_length_validated(self):
        f = lambda t, x, u: x
        with pytest.raises(ValueError):
            rk4_integrate_controlled(f, [1.0], np.linspace(0, 1, 11), np.zeros(5))


class TestSolveOde:
    def test_matches_analytic(self):
        traj = solve_ode(lambda t, x: -x, [1.0], (0.0, 2.0))
        assert traj.final_state[0] == pytest.approx(np.exp(-2.0), rel=1e-6)

    def test_t_eval_respected(self):
        t_eval = np.linspace(0, 1, 7)
        traj = solve_ode(lambda t, x: -x, [1.0], (0.0, 1.0), t_eval=t_eval)
        np.testing.assert_allclose(traj.times, t_eval)

    def test_matches_rk4(self):
        f = lambda t, x: np.array([x[1], -x[0]])
        a = solve_ode(f, [1.0, 0.0], (0.0, 3.0), rtol=1e-10, atol=1e-12)
        b = rk4_integrate(f, [1.0, 0.0], np.linspace(0, 3, 3001))
        np.testing.assert_allclose(a.final_state, b.final_state, atol=1e-7)


class TestFindFixedPoint:
    def test_linear_decay(self):
        fp = find_fixed_point(lambda x: -x + 3.0, np.array([0.0]))
        np.testing.assert_allclose(fp, [3.0], atol=1e-8)

    def test_logistic(self):
        fp = find_fixed_point(lambda x: x * (1.0 - x), np.array([0.2]))
        np.testing.assert_allclose(fp, [1.0], atol=1e-8)

    def test_2d_system(self):
        def f(x):
            return np.array([1.0 - x[0], x[0] - x[1]])

        fp = find_fixed_point(f, np.array([0.0, 0.0]))
        np.testing.assert_allclose(fp, [1.0, 1.0], atol=1e-8)

    def test_limit_cycle_raises(self):
        # Harmonic oscillator never settles.
        def f(x):
            return np.array([x[1], -x[0]])

        with pytest.raises(RuntimeError):
            find_fixed_point(f, np.array([1.0, 0.0]), settle_time=10.0,
                             max_rounds=2)

    def test_residual_at_fixed_point(self, sir_model):
        fp = find_fixed_point(sir_model.drift_fn([10.0]), np.array([0.7, 0.05]))
        assert np.linalg.norm(sir_model.drift(fp, [10.0])) < 1e-9

    def test_near_miss_residual_warns(self):
        # Regression: a settle that exhausts its rounds with residual in
        # (tol, 1e-5] used to return silently; it must now report the
        # achieved residual.  Linear decay x' = -x over 12 time units
        # leaves |f| = e^-12 ~ 6e-6 — inside the warn band for
        # tol = 1e-12.
        f = lambda x: -x
        with pytest.warns(RuntimeWarning, match="residual"):
            fp = find_fixed_point(f, np.array([1.0]), settle_time=6.0,
                                  max_rounds=2, tol=1e-12, polish=False)
        # The returned point is the (near-equilibrium) final iterate.
        assert abs(fp[0]) <= 1e-5

    def test_polish_rejects_faraway_fsolve_root(self):
        # f has a root at x = 10, but the settle stalls near x = 0 (the
        # drift is ~flat there); fsolve jumps to the far root and the
        # polish must reject a solution that moved the iterate by more
        # than 10% of its norm.  The flat region keeps |f| below the
        # 1e-5 acceptance level, so no RuntimeError either.
        def f(x):
            return np.where(np.abs(x) < 1.0, 1e-7 * np.ones_like(x),
                            10.0 - x)

        with pytest.warns(RuntimeWarning):
            fp = find_fixed_point(f, np.array([0.0]), settle_time=1.0,
                                  max_rounds=1, polish=True)
        assert abs(fp[0]) < 1.0  # not the x = 10 fsolve root

    def test_max_rounds_zero_goes_straight_to_polish(self):
        # Regression: max_rounds=0 with x0 already an equilibrium used
        # to raise on a sentinel infinite residual.
        fp = find_fixed_point(lambda x: -x, np.array([0.0]), max_rounds=0)
        np.testing.assert_allclose(fp, [0.0], atol=1e-12)

    def test_polish_accepts_nearby_root(self):
        # Slow decay toward x* = 1: the settle stops with |f| ~ 6e-8
        # (warn band for tol = 1e-10), and fsolve finishes the job from
        # nearby, so the polished point is kept.
        f = lambda x: 1e-2 * (1.0 - x)
        with pytest.warns(RuntimeWarning):
            fp = find_fixed_point(f, np.array([0.0]), tol=1e-10,
                                  polish=True)
        assert abs(fp[0] - 1.0) < 1e-9
