"""The telemetry subsystem (:mod:`repro.telemetry`).

Covers the tracer (span nesting, exception safety, rendering,
subscribers, Chrome-trace export), the metrics registry (counter /
gauge / histogram semantics, snapshots), the instrumented seams the
rest of the library feeds (cache miss reasons, runner span tree,
RunReport metric views) and — the load-bearing invariant — that the
whole subsystem is a provable near-no-op while disabled.

The overhead test converts "telemetry ops per workload" into a bound
instead of timing an A/B pair: one enabled run counts how many span /
registry operations a fig2-sized Pontryagin ladder performs
(``telemetry.stats()``), a tight loop prices one *disabled* operation,
and the product must stay under 5% of the disabled workload's wall
time.  That stays stable on loaded CI boxes where two ~1 s timings of
the same code routinely differ by more than 5%.
"""

import json
import time

import pytest

from repro import telemetry
from repro.bounds import pontryagin_transient_bounds
from repro.models import make_sir_model
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.cache import (
    CACHE_HIT,
    CACHE_SCHEMA_VERSION,
    MISS_REASONS,
    cache_path,
    load_cached_detail,
    store_result,
)
from repro.telemetry import NOOP_SPAN, Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Every test starts and ends disabled with empty state."""
    telemetry.disable()
    telemetry.clear()
    yield
    telemetry.disable()
    telemetry.clear()
    from repro.telemetry.core import clear_subscribers

    clear_subscribers()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

def test_span_tree_nests_and_times():
    telemetry.enable()
    with telemetry.span("outer", layer="runner") as outer:
        with telemetry.span("inner") as inner:
            time.sleep(0.01)
    roots = telemetry.trace_roots()
    assert [r.name for r in roots] == ["outer"]
    assert [c.name for c in roots[0].children] == ["inner"]
    assert outer.duration >= inner.duration >= 0.01
    assert outer.attributes == {"layer": "runner"}
    assert telemetry.current_span() is None


def test_span_exception_annotates_and_reraises():
    telemetry.enable()
    with pytest.raises(RuntimeError, match="boom"):
        with telemetry.span("outer"):
            with telemetry.span("failing"):
                raise RuntimeError("boom")
    (root,) = telemetry.trace_roots()
    failing = root.children[0]
    assert failing.error == "RuntimeError"
    assert failing.attributes["error"] == "RuntimeError"
    # The contextvar unwound on both levels despite the exception.
    assert telemetry.current_span() is None
    assert "!RuntimeError" in telemetry.render_trace()


def test_span_set_attaches_midflight_attributes():
    telemetry.enable()
    with telemetry.span("sweep") as sp:
        sp.set("lanes", 8)
    assert telemetry.trace_roots()[0].attributes["lanes"] == 8
    assert "lanes=8" in telemetry.render_trace()


def test_render_trace_aggregates_repeated_siblings():
    telemetry.enable()
    with telemetry.span("parent"):
        for _ in range(5):
            with telemetry.span("kernel.step"):
                pass
        with telemetry.span("unique"):
            pass
    out = telemetry.render_trace()
    assert "kernel.step ×5" in out
    assert "total=" in out and "mean=" in out
    assert "unique" in out
    # The aggregated members are not also listed individually.
    assert out.count("kernel.step") == 1


def test_render_trace_empty():
    assert telemetry.render_trace() == "(no spans recorded)"


def test_subscriber_sees_span_boundaries_and_survives_errors():
    telemetry.enable()
    events = []

    def listener(event, sp):
        events.append((event, sp.name))

    def broken(event, sp):
        raise ValueError("listener bug")

    t_broken = telemetry.subscribe(broken)
    t_ok = telemetry.subscribe(listener)
    with telemetry.span("a"):
        with telemetry.span("b"):
            pass
    assert events == [("span_start", "a"), ("span_start", "b"),
                      ("span_end", "b"), ("span_end", "a")]
    telemetry.unsubscribe(t_ok)
    telemetry.unsubscribe(t_broken)
    with telemetry.span("c"):
        pass
    assert len(events) == 4


def test_broken_subscriber_is_tallied_not_hidden():
    from repro.telemetry import core

    telemetry.enable()
    before = core.stats().get("subscriber_errors", 0)

    def broken(event, sp):
        raise ValueError("listener bug")

    token = telemetry.subscribe(broken)
    with telemetry.span("a"):
        pass
    telemetry.unsubscribe(token)
    # One failure per span boundary (start + end).
    assert core.stats().get("subscriber_errors", 0) == before + 2


def test_sweep_payloads_exclude_shard_invariant_context():
    """The model factory and sweep config ship once per worker (via the
    pool initializer), so per-theta payloads hold (theta, seed) only."""
    import pickle

    import numpy as np

    from repro.engine import sweep_constant_ensembles
    from repro.models import make_sir_model

    telemetry.enable()
    sweep_constant_ensembles(
        make_sir_model, [0.7, 0.3], 30, [1.0, 2.0, 3.0],
        t_final=0.2, n_runs=2, n_samples=5,
    )
    snap = telemetry.snapshot()
    payload = snap["histograms"]["engine.shard.payload_bytes"]
    shared = snap["histograms"]["engine.shard.shared_bytes"]
    assert payload["count"] == 3
    # Regression pin on the drop: the context is metered *once*, not per
    # shard, and every payload weighs less than the pre-refactor 11-tuple
    # (context + theta + seed) would.
    assert shared["count"] == 1
    old_style = len(pickle.dumps(
        (make_sir_model, {}, np.asarray([0.7, 0.3]), 30,
         np.asarray([1.0]), 0.2, 2, np.random.SeedSequence(0).spawn(1)[0],
         5, 0.0, 50_000_000)
    ))
    assert payload["max"] < old_style
    assert payload["max"] < 1024


def test_unpicklable_payload_stamps_counter_and_stops_size_metering():
    from repro.engine import map_shards

    telemetry.enable()
    results = map_shards(str, [lambda: None], processes=None)
    assert len(results) == 1
    snap = telemetry.snapshot()
    assert snap["counters"].get("engine.shard.unpicklable_payloads") == 1
    # Size metering stopped at the unpicklable payload: the hoisted
    # histogram exists but recorded nothing.
    assert snap["histograms"]["engine.shard.payload_bytes"]["count"] == 0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_counter_gauge_histogram_semantics():
    telemetry.enable()
    telemetry.inc("events")
    telemetry.inc("events", 4)
    telemetry.set_gauge("rate", 2.5)
    telemetry.set_gauge("rate", 7.5)  # last write wins
    telemetry.observe("sizes", 3.0)
    telemetry.observe_many("sizes", [5.0, 100.0])
    snap = telemetry.snapshot()
    assert snap["counters"]["events"] == 5
    assert snap["gauges"]["rate"] == 7.5
    hist = snap["histograms"]["sizes"]
    assert hist["count"] == 3
    assert hist["sum"] == 108.0
    assert hist["min"] == 3.0 and hist["max"] == 100.0
    assert hist["mean"] == pytest.approx(36.0)


def test_histogram_power_of_two_buckets():
    h = Histogram("h")
    h.observe_many([0.0, -1.0, 0.7, 3.0, 4.0, 100.0])
    buckets = dict((edge, n) for edge, n in h.summary()["buckets"])
    # v <= 0 shares the 0.0 edge; each positive v lands under the
    # smallest power of two >= v.
    assert buckets == {0.0: 2, 1.0: 1, 4.0: 2, 128.0: 1}


def test_registry_snapshot_is_json_serializable_and_resets():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.histogram("h").observe(2.0)
    reg.gauge("g").set(1.5)
    text = json.dumps(reg.snapshot())
    assert "\"c\": 3" in text
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {},
                              "histograms": {}}


def test_empty_histogram_summary_has_no_min_max():
    summary = Histogram("empty").summary()
    assert summary["count"] == 0
    assert "min" not in summary and "max" not in summary


# ----------------------------------------------------------------------
# Disabled-mode invariants
# ----------------------------------------------------------------------

def test_disabled_is_a_noop_everywhere():
    assert not telemetry.enabled()
    assert telemetry.span("anything", key="val") is NOOP_SPAN
    with telemetry.span("anything") as sp:
        sp.set("k", 1)  # no-op, no error
    telemetry.inc("c")
    telemetry.set_gauge("g", 1.0)
    telemetry.observe("h", 1.0)
    telemetry.observe_many("h", [1.0, 2.0])
    assert telemetry.live_counter("c") is None
    assert telemetry.live_histogram("h") is None
    assert telemetry.trace_roots() == []
    assert telemetry.snapshot() == {"counters": {}, "gauges": {},
                                    "histograms": {}}
    assert telemetry.stats() == {"spans": 0, "updates": 0}


def test_disabled_spans_do_not_leak_into_enabled_traces():
    with telemetry.span("before-enable"):
        telemetry.enable()
        with telemetry.span("live"):
            pass
    roots = telemetry.trace_roots()
    # The no-op span never registered, so "live" is a root.
    assert [r.name for r in roots] == ["live"]


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------

def test_chrome_trace_schema(tmp_path):
    telemetry.enable()
    with telemetry.span("root", lanes=4):
        with telemetry.span("child", obj=object()):
            time.sleep(0.002)
    doc = telemetry.chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert [e["name"] for e in events] == ["root", "child"]
    for e in events:
        assert e["cat"] == "repro" and e["ph"] == "X"
        assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
    root, child = events
    # The child's complete event lies inside its parent's.
    assert root["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1.0
    # Non-JSON attribute values are stringified, not fatal.
    assert isinstance(child["args"]["obj"], str)
    path = telemetry.save_chrome_trace(tmp_path / "trace.json")
    assert json.loads(path.read_text())["traceEvents"]


def test_save_snapshot_roundtrips(tmp_path):
    telemetry.enable()
    telemetry.inc("k", 2)
    path = telemetry.save_snapshot(tmp_path / "m.json",
                                   telemetry.snapshot())
    assert json.loads(path.read_text())["counters"]["k"] == 2


# ----------------------------------------------------------------------
# Cache miss taxonomy
# ----------------------------------------------------------------------

def _transient_spec():
    return get_scenario("sir-transient")


def test_cache_miss_reasons_distinguished(tmp_path):
    spec = _transient_spec()
    telemetry.enable()

    def lookup():
        return load_cached_detail(spec, tmp_path)

    result, reason = lookup()
    assert result is None and reason == "absent"

    path = cache_path(spec, tmp_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ not json")
    assert lookup() == (None, "corrupt")

    path.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION + 1}))
    assert lookup() == (None, "schema")

    import repro

    path.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION,
                                "library": "0.0.0-other"}))
    assert lookup() == (None, "library-version")

    path.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION,
                                "library": repro.__version__,
                                "spec_payload": {"different": True}}))
    assert lookup() == (None, "payload-mismatch")

    counters = telemetry.snapshot()["counters"]
    assert counters["scenarios.cache.miss"] == 5
    for miss_reason in MISS_REASONS:
        assert counters[f"scenarios.cache.miss.{miss_reason}"] == 1
    assert "scenarios.cache.hit" not in counters


def test_cache_hit_counted_after_store(tmp_path):
    spec = _transient_spec()
    run = run_scenario(spec, use_cache=False)
    store_result(spec, run.result, tmp_path)
    telemetry.enable()
    result, reason = load_cached_detail(spec, tmp_path)
    assert reason == CACHE_HIT and result is not None
    assert telemetry.snapshot()["counters"]["scenarios.cache.hit"] == 1


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------

def test_run_scenario_span_tree_reaches_the_kernels():
    telemetry.enable()
    run = run_scenario(_transient_spec(), use_cache=False)
    out = telemetry.render_trace()
    # runner → question backend → integrator kernels, one tree.
    assert "scenario.run" in out
    assert "scenario.question" in out
    assert "ode.dopri_batch" in out or "ode.rk4" in out
    counters = telemetry.snapshot()["counters"]
    assert counters["scenarios.questions.run"] == run.report.questions_run
    assert counters.get("ode.dopri.steps_accepted", 0) > 0
    assert counters.get("pontryagin.iterations", 0) > 0

    report = run.report
    assert report.cache_hit is False
    assert report.cache_miss_reason == "bypassed"
    assert report.elapsed_seconds > 0.0
    assert report.metrics["scenarios.questions.run"] == report.questions_run
    rendered = report.render()
    assert "cache_hit=false" in rendered and "miss=bypassed" in rendered


def test_run_report_metric_views(tmp_path):
    spec = _transient_spec()
    first = run_scenario(spec, cache_dir=tmp_path)
    assert not first.report.cache_hit
    assert first.report.cache_misses == 1
    assert first.report.cache_miss_reason == "absent"
    second = run_scenario(spec, cache_dir=tmp_path)
    assert second.report.cache_hit
    assert second.report.cache_hits == 1
    assert second.report.cache_miss_reason is None
    assert "cache_hit=true" in second.report.render()


# ----------------------------------------------------------------------
# Overhead regression (the ≤5% disabled-cost bound)
# ----------------------------------------------------------------------

def test_disabled_overhead_below_five_percent():
    model = make_sir_model()
    x0 = (0.7, 0.3)
    horizons = [0.5, 1.0, 2.0]

    def workload():
        return pontryagin_transient_bounds(
            model, x0, horizons, steps_per_unit=60.0
        )

    assert not telemetry.enabled()
    workload()  # warm numpy/model caches out of the measurement
    start = time.perf_counter()
    workload()
    wall = time.perf_counter() - start

    # Count the telemetry ops the same ladder performs when enabled.
    telemetry.enable()
    telemetry.clear()
    workload()
    ops = telemetry.stats()
    telemetry.disable()
    telemetry.clear()
    n_ops = ops["spans"] + ops["updates"]
    assert ops["spans"] > 0 and ops["updates"] > 0

    # Price one *disabled* telemetry operation (flag check + return).
    k = 20_000
    start = time.perf_counter()
    for _ in range(k):
        with telemetry.span("x", a=1):
            pass
        telemetry.inc("x")
    per_op = (time.perf_counter() - start) / (2 * k)

    overhead = per_op * n_ops
    assert overhead <= 0.05 * wall, (
        f"disabled telemetry cost {overhead * 1e3:.3f}ms over {n_ops} ops "
        f"exceeds 5% of the {wall * 1e3:.1f}ms workload"
    )
