"""Tests for the Pontryagin forward–backward sweep (repro.bounds.pontryagin)."""

import numpy as np
import pytest

from repro.bounds import (
    PontryaginResult,
    extremal_trajectory,
    pontryagin_transient_bounds,
    reachable_polytope_2d,
    switching_function,
    switching_times,
    switching_times_from_costate,
    uncertain_envelope,
)
from repro.params import Interval
from repro.population import PopulationModel, Transition


def linear_control_model():
    """x' = theta with theta in [-1, 1]: analytic optimum x(T) = T."""
    tr = Transition("move", [1.0], lambda x, th: th[0])
    return PopulationModel(
        "linear", ("x",), [tr], Interval(-1.0, 1.0),
        affine_drift=lambda x: (np.zeros(1), np.ones((1, 1))),
        drift_jacobian=lambda x, th: np.zeros((1, 1)),
    )


def double_integrator_model():
    """x1' = x2, x2' = theta, theta in [-1, 1]."""
    move = Transition("vel", [1.0, 0.0], lambda x, th: x[1])
    acc = Transition("acc", [0.0, 1.0], lambda x, th: th[0])
    return PopulationModel(
        "double_integrator", ("pos", "vel"), [move, acc],
        Interval(-1.0, 1.0),
        affine_drift=lambda x: (
            np.array([x[1], 0.0]),
            np.array([[0.0], [1.0]]),
        ),
        drift_jacobian=lambda x, th: np.array([[0.0, 1.0], [0.0, 0.0]]),
    )


class TestAnalyticOptima:
    def test_linear_max(self):
        model = linear_control_model()
        res = extremal_trajectory(model, [0.0], 2.0, [1.0], n_steps=100)
        assert res.value == pytest.approx(2.0, abs=1e-6)
        assert res.converged
        np.testing.assert_allclose(res.controls[:, 0], 1.0)

    def test_linear_min(self):
        model = linear_control_model()
        res = extremal_trajectory(model, [0.0], 2.0, [1.0], maximize=False,
                                  n_steps=100)
        assert res.value == pytest.approx(-2.0, abs=1e-6)

    def test_double_integrator_max_position(self):
        # max x1(T) with x1' = x2, x2' = u: full throttle, x1(T) = T^2/2.
        model = double_integrator_model()
        res = extremal_trajectory(model, [0.0, 0.0], 2.0, [1.0, 0.0],
                                  n_steps=200)
        assert res.value == pytest.approx(2.0, abs=1e-5)
        assert res.converged

    def test_costate_terminal_condition(self):
        model = double_integrator_model()
        res = extremal_trajectory(model, [0.0, 0.0], 1.0, [1.0, 0.0],
                                  n_steps=100)
        np.testing.assert_allclose(res.costates[-1], [1.0, 0.0], atol=1e-12)

    def test_costate_dynamics_double_integrator(self):
        # p1' = 0, p2' = -p1 -> p1 = 1, p2(t) = T - t.
        model = double_integrator_model()
        horizon = 1.0
        res = extremal_trajectory(model, [0.0, 0.0], horizon, [1.0, 0.0],
                                  n_steps=100)
        np.testing.assert_allclose(res.costates[:, 0], 1.0, atol=1e-9)
        np.testing.assert_allclose(
            res.costates[:, 1], horizon - res.times, atol=1e-9
        )


class TestSIRPaperValues:
    """Figure 2 of the paper: bang-bang extremals of the SIR model."""

    @pytest.mark.slow
    def test_max_infected_at_3_is_bang_bang(self, sir_model, sir_x0):
        res = extremal_trajectory(sir_model, sir_x0, 3.0, [0.0, 1.0],
                                  n_steps=300)
        assert res.converged
        switches = switching_times(res)
        # Paper: theta_min for t < ~2.25 then theta_max.
        assert len(switches) == 1
        assert 2.0 < switches[0] < 2.5
        assert res.controls[0, 0] == pytest.approx(1.0)
        assert res.controls[-1, 0] == pytest.approx(10.0)
        # Value ~0.17 (paper figure peaks slightly below 0.2).
        assert 0.15 < res.value < 0.20

    @pytest.mark.slow
    def test_min_infected_at_3_two_switches(self, sir_model, sir_x0):
        res = extremal_trajectory(sir_model, sir_x0, 3.0, [0.0, 1.0],
                                  maximize=False, n_steps=300)
        switches = switching_times(res)
        # Paper: theta_min until ~0.7, theta_max until ~2.2, theta_min after.
        assert len(switches) == 2
        assert 0.4 < switches[0] < 1.0
        assert 1.8 < switches[1] < 2.4
        assert res.value < 0.03

    def test_imprecise_dominates_uncertain(self, sir_model, sir_x0):
        # Eq. 12: the uncertain envelope is inside the imprecise bounds.
        horizon = 2.0
        res_max = extremal_trajectory(sir_model, sir_x0, horizon, [0.0, 1.0],
                                      n_steps=150)
        res_min = extremal_trajectory(sir_model, sir_x0, horizon, [0.0, 1.0],
                                      maximize=False, n_steps=150)
        env = uncertain_envelope(sir_model, sir_x0, np.array([0.0, horizon]),
                                 resolution=15)
        assert res_max.value >= env.upper["I"][-1] - 1e-6
        assert res_min.value <= env.lower["I"][-1] + 1e-6


class TestSweepMechanics:
    def test_invalid_inputs(self, sir_model, sir_x0):
        with pytest.raises(ValueError):
            extremal_trajectory(sir_model, sir_x0, -1.0, [0.0, 1.0])
        with pytest.raises(ValueError):
            extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 1.0], n_steps=1)
        with pytest.raises(ValueError):
            extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 0.0])
        with pytest.raises(ValueError):
            extremal_trajectory(sir_model, sir_x0, 1.0, [1.0, 0.0, 0.0])

    def test_warm_start_shape_validated(self, sir_model, sir_x0):
        with pytest.raises(ValueError):
            extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 1.0],
                                n_steps=10, initial_controls=np.zeros((5, 1)))

    def test_warm_start_accepted(self, sir_model, sir_x0):
        warm = np.full((50, 1), 5.0)
        res = extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 1.0],
                                  n_steps=50, initial_controls=warm)
        assert res.converged

    def test_controls_admissible(self, sir_model, sir_x0):
        res = extremal_trajectory(sir_model, sir_x0, 2.0, [0.0, 1.0],
                                  n_steps=100)
        for u in res.controls:
            assert sir_model.theta_set.contains(u, tol=1e-9)

    def test_control_at_lookup(self, sir_model, sir_x0):
        res = extremal_trajectory(sir_model, sir_x0, 2.0, [0.0, 1.0],
                                  n_steps=100)
        np.testing.assert_allclose(res.control_at(0.0), res.controls[0])
        np.testing.assert_allclose(res.control_at(1.99), res.controls[-1])
        np.testing.assert_allclose(res.control_at(5.0), res.controls[-1])

    def test_control_at_left_continuous_at_grid_points(self, sir_model, sir_x0):
        """Regression: the lookup is documented left-continuous, but the
        ``side="right"`` searchsorted made it right-continuous at exact
        grid times — at a bang-bang switch knot it reported the *next*
        interval's control instead of the one driving into the knot."""
        res = extremal_trajectory(sir_model, sir_x0, 3.0, [0.0, 1.0],
                                  n_steps=300)
        jumps = np.abs(np.diff(res.controls[:, 0]))
        k = int(np.argmax(jumps)) + 1
        assert jumps[k - 1] > 0.5, "expected a bang-bang switch"
        t_k = res.times[k]
        np.testing.assert_allclose(res.control_at(t_k), res.controls[k - 1])
        np.testing.assert_allclose(res.control_at(t_k + 1e-9), res.controls[k])
        # Clamping at the ends is unchanged.
        np.testing.assert_allclose(res.control_at(res.times[0]),
                                   res.controls[0])
        np.testing.assert_allclose(res.control_at(res.times[-1]),
                                   res.controls[-1])

    def test_trajectory_property(self, sir_model, sir_x0):
        res = extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 1.0],
                                  n_steps=60)
        traj = res.trajectory
        np.testing.assert_allclose(traj.final_state, res.states[-1])

    def test_value_reported_in_objective_units(self, sir_model, sir_x0):
        res_min = extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 1.0],
                                      maximize=False, n_steps=60)
        # Minimised value equals direction . x(T) of the found trajectory.
        assert res_min.value == pytest.approx(res_min.states[-1, 1], abs=1e-9)


class TestSwitchingExtraction:
    def test_costate_switch_matches_control_switch(self, sir_model, sir_x0):
        res = extremal_trajectory(sir_model, sir_x0, 3.0, [0.0, 1.0],
                                  n_steps=300)
        from_control = switching_times(res, min_dwell=0.3)
        from_costate = switching_times_from_costate(res, sir_model)
        assert len(from_costate) == 1
        assert abs(from_control[0] - from_costate[0]) < 0.3

    def test_switching_function_sign_matches_control(self, sir_model, sir_x0):
        res = extremal_trajectory(sir_model, sir_x0, 2.0, [0.0, 1.0],
                                  n_steps=200)
        sigma = switching_function(res, sir_model)
        # Where sigma is clearly positive the control sits at theta_max.
        for i in range(res.controls.shape[0]):
            if sigma[i] > 1e-3:
                assert res.controls[i, 0] > 9.0
            elif sigma[i] < -1e-3:
                assert res.controls[i, 0] < 2.0

    def test_switching_function_requires_affine(self, sir_model, sir_x0):
        from repro.params import Interval
        from repro.population import PopulationModel, Transition

        res = extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 1.0],
                                  n_steps=60)
        nonaffine = PopulationModel(
            "na", ("a", "b"),
            [Transition("t", [1.0, 0.0], lambda x, th: th[0] ** 2)],
            Interval(0.0, 1.0),
        )
        with pytest.raises(ValueError):
            switching_function(res, nonaffine)

    def test_min_dwell_consolidates_chatter(self):
        # Synthetic result with a chattering band: 1 structural switch.
        times = np.linspace(0.0, 1.0, 11)
        controls = np.array([1, 1, 1, 10, 1, 10, 10, 10, 10, 10],
                            dtype=float)[:, None]
        res = PontryaginResult(
            times=times, states=np.zeros((11, 2)), costates=np.zeros((11, 2)),
            controls=controls, direction=np.array([0.0, 1.0]),
            maximize=True, value=0.0, converged=True, iterations=1,
        )
        raw = switching_times(res)
        consolidated = switching_times(res, min_dwell=0.25)
        assert len(raw) == 3
        assert len(consolidated) == 1

    def test_min_dwell_keeps_clean_signal(self):
        times = np.linspace(0.0, 1.0, 11)
        controls = np.array([1, 1, 1, 1, 1, 10, 10, 10, 10, 10],
                            dtype=float)[:, None]
        res = PontryaginResult(
            times=times, states=np.zeros((11, 2)), costates=np.zeros((11, 2)),
            controls=controls, direction=np.array([0.0, 1.0]),
            maximize=True, value=0.0, converged=True, iterations=1,
        )
        assert switching_times(res, min_dwell=0.25) == [pytest.approx(0.5)]


class TestTransientBounds:
    def test_monotone_horizons_required(self, sir_model, sir_x0):
        with pytest.raises(ValueError):
            pontryagin_transient_bounds(sir_model, sir_x0, [1.0, 0.5])
        with pytest.raises(ValueError):
            pontryagin_transient_bounds(sir_model, sir_x0, [0.0, 1.0])

    def test_bounds_bracket_uncertain(self, sir_model, sir_x0):
        horizons = np.array([0.5, 1.0, 1.5])
        tb = pontryagin_transient_bounds(sir_model, sir_x0, horizons,
                                         observables=["I"], steps_per_unit=60)
        env = uncertain_envelope(sir_model, sir_x0,
                                 np.insert(horizons, 0, 0.0), resolution=9)
        for k in range(3):
            assert tb.lower["I"][k] <= env.lower["I"][k + 1] + 1e-5
            assert tb.upper["I"][k] >= env.upper["I"][k + 1] - 1e-5

    def test_width_and_final_helpers(self, sir_model, sir_x0):
        tb = pontryagin_transient_bounds(sir_model, sir_x0, [0.5, 1.0],
                                         observables=["I"], steps_per_unit=60)
        assert np.all(tb.width("I") >= -1e-9)
        lo, hi = tb.final_bounds("I")
        assert lo <= hi

    def test_keep_results(self, sir_model, sir_x0):
        tb = pontryagin_transient_bounds(
            sir_model, sir_x0, [0.5, 1.0], observables=["I"],
            steps_per_unit=60, keep_results=True,
        )
        assert len(tb.upper_results["I"]) == 2
        assert tb.upper_results["I"][0].maximize


class TestReachablePolytope:
    def test_2d_only(self, gps_map):
        from repro.models import gps_initial_state_map

        with pytest.raises(ValueError):
            reachable_polytope_2d(gps_map, gps_initial_state_map(), 1.0)

    def test_min_directions(self, sir_model, sir_x0):
        with pytest.raises(ValueError):
            reachable_polytope_2d(sir_model, sir_x0, 1.0, n_directions=2)

    @pytest.mark.slow
    def test_polytope_contains_uncertain_endpoints(self, sir_model, sir_x0):
        from repro.geometry import ConvexPolygon
        from repro.ode import solve_ode

        horizon = 1.0
        vertices = reachable_polytope_2d(sir_model, sir_x0, horizon,
                                         n_directions=12, n_steps=120)
        poly = ConvexPolygon(vertices)
        for theta in (1.0, 4.0, 10.0):
            traj = solve_ode(sir_model.vector_field([theta]), sir_x0,
                             (0, horizon))
            assert poly.contains(traj.final_state, tol=1e-3)
