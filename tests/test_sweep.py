"""Tests for the uncertain parameter sweep (repro.bounds.sweep)."""

import numpy as np
import pytest

from repro.bounds import uncertain_envelope


class TestUncertainEnvelope:
    def test_basic_structure(self, sir_model):
        t = np.linspace(0, 2, 11)
        env = uncertain_envelope(sir_model, [0.7, 0.3], t, resolution=5)
        assert set(env.observable_names) == {"S", "I"}
        assert env.lower["I"].shape == (11,)
        assert env.thetas.shape[1] == 1

    def test_envelope_ordering(self, sir_model):
        env = uncertain_envelope(sir_model, [0.7, 0.3],
                                 np.linspace(0, 3, 13), resolution=7)
        for name in env.observable_names:
            assert np.all(env.lower[name] <= env.upper[name] + 1e-12)

    def test_initial_time_bounds_collapse(self, sir_model):
        env = uncertain_envelope(sir_model, [0.7, 0.3],
                                 np.linspace(0, 1, 5), resolution=5)
        assert env.lower["I"][0] == pytest.approx(0.3)
        assert env.upper["I"][0] == pytest.approx(0.3)

    def test_envelope_contains_interior_theta_solution(self, sir_model):
        from repro.ode import solve_ode

        t = np.linspace(0, 3, 16)
        env = uncertain_envelope(sir_model, [0.7, 0.3], t, resolution=31)
        traj = solve_ode(sir_model.vector_field([4.321]), [0.7, 0.3],
                         (0, 3), t_eval=t)
        assert np.all(env.lower["I"] - 1e-4 <= traj.states[:, 1])
        assert np.all(traj.states[:, 1] <= env.upper["I"] + 1e-4)

    def test_argmax_theta_recorded(self, sir_model):
        env = uncertain_envelope(sir_model, [0.7, 0.3],
                                 np.linspace(0, 1, 5), resolution=5)
        assert env.argmax_theta["I"].shape == (5, 1)
        for theta in env.argmax_theta["I"]:
            assert sir_model.theta_set.contains(theta)

    def test_monotone_resolution_widens_envelope(self, sir_model):
        t = np.linspace(0, 3, 7)
        coarse = uncertain_envelope(sir_model, [0.7, 0.3], t, resolution=3)
        fine = uncertain_envelope(sir_model, [0.7, 0.3], t, resolution=21)
        assert np.all(fine.upper["I"] >= coarse.upper["I"] - 1e-9)
        assert np.all(fine.lower["I"] <= coarse.lower["I"] + 1e-9)

    def test_named_state_observables(self, gps_poisson):
        from repro.models import gps_initial_state_poisson

        env = uncertain_envelope(
            gps_poisson, gps_initial_state_poisson(),
            np.linspace(0, 1, 5), resolution=3, observables=["Q1", "q1"],
        )
        # "Q1" is the declared observable (rescaled), "q1" a raw coordinate.
        np.testing.assert_allclose(env.upper["Q1"], 2.0 * env.upper["q1"])

    def test_custom_weight_observable(self, sir_model):
        env = uncertain_envelope(
            sir_model, [0.7, 0.3], np.linspace(0, 1, 5), resolution=3,
            observables=[("S_plus_I", [1.0, 1.0])],
        )
        assert "S_plus_I" in env.lower

    def test_unknown_observable_rejected(self, sir_model):
        with pytest.raises(KeyError):
            uncertain_envelope(sir_model, [0.7, 0.3], np.linspace(0, 1, 3),
                               observables=["XYZ"])

    def test_invalid_resolution_rejected(self, sir_model):
        with pytest.raises(ValueError):
            uncertain_envelope(sir_model, [0.7, 0.3], np.linspace(0, 1, 3),
                               resolution=1)

    def test_width_and_final_bounds_helpers(self, sir_model):
        env = uncertain_envelope(sir_model, [0.7, 0.3],
                                 np.linspace(0, 2, 9), resolution=5)
        width = env.width("I")
        assert np.all(width >= -1e-12)
        lo, hi = env.final_bounds("I")
        assert lo <= hi

    def test_two_parameter_model(self, gps_poisson):
        from repro.models import gps_initial_state_poisson

        env = uncertain_envelope(
            gps_poisson, gps_initial_state_poisson(),
            np.linspace(0, 2, 5), resolution=4,
        )
        # grid 4x4 + 4 corners (deduplicated to 16).
        assert env.thetas.shape == (16, 2)


class TestRk4Batching:
    def test_batch_matches_scalar_bitwise(self, sir_model):
        t = np.linspace(0, 2, 9)
        kwargs = dict(resolution=5, integrator="rk4", rk4_steps=80)
        batched = uncertain_envelope(sir_model, [0.7, 0.3], t, **kwargs)
        scalar = uncertain_envelope(sir_model, [0.7, 0.3], t, batch=False,
                                    **kwargs)
        for name in batched.observable_names:
            np.testing.assert_array_equal(batched.lower[name],
                                          scalar.lower[name])
            np.testing.assert_array_equal(batched.upper[name],
                                          scalar.upper[name])

    def test_descending_grid_starts_from_x0(self, sir_model):
        """Regression: ``np.union1d`` re-sorted the RK4 grid ascending,
        so a descending ``t_eval`` integrated from the wrong end; the
        envelope must collapse to x0 at ``t_eval[0]``, exactly like the
        adaptive integrator's backward solve."""
        t = np.array([2.0, 1.0, 0.0])
        env = uncertain_envelope(sir_model, [0.7, 0.3], t, resolution=3,
                                 integrator="rk4", rk4_steps=300)
        assert env.lower["I"][0] == pytest.approx(0.3)
        assert env.upper["I"][0] == pytest.approx(0.3)
        adaptive = uncertain_envelope(sir_model, [0.7, 0.3], t, resolution=3)
        np.testing.assert_allclose(env.lower["I"], adaptive.lower["I"],
                                   atol=1e-6)
        np.testing.assert_allclose(env.upper["I"], adaptive.upper["I"],
                                   atol=1e-6)

    def test_descending_batch_matches_scalar(self, sir_model):
        t = np.array([1.5, 0.75, 0.0])
        kwargs = dict(resolution=3, integrator="rk4", rk4_steps=60)
        batched = uncertain_envelope(sir_model, [0.7, 0.3], t, **kwargs)
        scalar = uncertain_envelope(sir_model, [0.7, 0.3], t, batch=False,
                                    **kwargs)
        np.testing.assert_array_equal(batched.lower["I"], scalar.lower["I"])
        np.testing.assert_array_equal(batched.upper["I"], scalar.upper["I"])

    def test_degenerate_horizon_still_collapses(self, sir_model):
        env = uncertain_envelope(sir_model, [0.7, 0.3], np.array([1.0, 1.0]),
                                 resolution=3, integrator="rk4")
        np.testing.assert_allclose(env.lower["I"], 0.3)
        np.testing.assert_allclose(env.upper["I"], 0.3)
