"""Tests for the drift extremiser (repro.inclusion.extremizers)."""

import numpy as np
import pytest

from repro.inclusion import DriftExtremizer
from repro.params import DiscreteSet, Interval
from repro.population import PopulationModel, Transition


def nonaffine_model():
    """Drift quadratic in theta: maximum at an interior point."""
    tr = Transition("t", [1.0], lambda x, th: 1.0 - (th[0] - 0.3) ** 2)
    return PopulationModel("quad", ("x",), [tr], Interval(0.0, 1.0))


class TestConstruction:
    def test_auto_picks_affine(self, sir_model):
        assert DriftExtremizer(sir_model).method == "affine"

    def test_auto_picks_grid_for_nonaffine(self):
        assert DriftExtremizer(nonaffine_model()).method == "grid"

    def test_affine_on_nonaffine_rejected(self):
        with pytest.raises(ValueError):
            DriftExtremizer(nonaffine_model(), method="affine")

    def test_invalid_method_rejected(self, sir_model):
        with pytest.raises(ValueError):
            DriftExtremizer(sir_model, method="magic")

    def test_invalid_resolution_rejected(self, sir_model):
        with pytest.raises(ValueError):
            DriftExtremizer(sir_model, grid_resolution=1)


class TestAffineStrategy:
    def test_bang_bang_maximiser_sir(self, sir_model):
        ext = DriftExtremizer(sir_model)
        x = np.array([0.5, 0.2])
        # Direction +I: infection term has positive coefficient -> theta_max.
        theta, value = ext.maximize_direction(x, [0.0, 1.0])
        assert theta[0] == 10.0
        assert value == pytest.approx(float(sir_model.drift(x, [10.0])[1]))
        # Direction +S: -theta S I -> theta_min.
        theta, _ = ext.maximize_direction(x, [1.0, 0.0])
        assert theta[0] == 1.0

    def test_zero_coefficient_deterministic(self, sir_model):
        ext = DriftExtremizer(sir_model)
        # At I = 0 the theta coefficient vanishes: lower bound by convention.
        theta, _ = ext.maximize_direction(np.array([0.5, 0.0]), [0.0, 1.0])
        assert theta[0] == 1.0

    def test_matches_grid_search(self, sir_model, rng):
        affine = DriftExtremizer(sir_model, method="affine")
        grid = DriftExtremizer(sir_model, method="grid", grid_resolution=201)
        for _ in range(10):
            x = rng.uniform(0.05, 0.9, size=2)
            p = rng.normal(size=2)
            _, va = affine.maximize_direction(x, p)
            _, vg = grid.maximize_direction(x, p)
            assert va >= vg - 1e-9
            assert va == pytest.approx(vg, abs=1e-6)

    def test_box_model(self, gps_poisson, rng):
        ext = DriftExtremizer(gps_poisson)
        corners = DriftExtremizer(gps_poisson, method="corners")
        for _ in range(10):
            x = rng.uniform(0.0, 0.5, size=2)
            p = rng.normal(size=2)
            _, va = ext.maximize_direction(x, p)
            _, vc = corners.maximize_direction(x, p)
            assert va == pytest.approx(vc, abs=1e-10)

    def test_discrete_theta_set(self):
        tr = Transition("t", [1.0], lambda x, th: th[0])
        model = PopulationModel(
            "d", ("x",), [tr], DiscreteSet([[1.0], [3.0], [2.0]]),
            affine_drift=lambda x: (np.zeros(1), np.ones((1, 1))),
        )
        ext = DriftExtremizer(model)
        theta, value = ext.maximize_direction([0.0], [1.0])
        assert theta[0] == 3.0 and value == pytest.approx(3.0)
        theta, value = ext.minimize_direction([0.0], [1.0])
        assert theta[0] == 1.0 and value == pytest.approx(1.0)


class TestGridStrategy:
    def test_interior_maximum_found_with_refine(self):
        model = nonaffine_model()
        coarse = DriftExtremizer(model, method="grid", grid_resolution=4)
        refined = DriftExtremizer(model, method="grid", grid_resolution=4,
                                  refine=True)
        _, v_coarse = coarse.maximize_direction([0.0], [1.0])
        _, v_refined = refined.maximize_direction([0.0], [1.0])
        assert v_refined >= v_coarse
        assert v_refined == pytest.approx(1.0, abs=1e-5)

    def test_grid_includes_corners(self):
        model = nonaffine_model()
        ext = DriftExtremizer(model, method="grid", grid_resolution=2)
        theta, _ = ext.minimize_direction([0.0], [1.0])
        # min of 1-(th-0.3)^2 on [0,1] is at th=1.
        assert theta[0] == pytest.approx(1.0)


class TestDerivedQueries:
    def test_minimize_is_negated_maximize(self, sir_model, rng):
        ext = DriftExtremizer(sir_model)
        x = np.array([0.4, 0.3])
        p = np.array([0.2, -0.7])
        _, vmin = ext.minimize_direction(x, p)
        _, vmax = ext.maximize_direction(x, p)
        assert vmin <= vmax

    def test_support_function(self, sir_model):
        ext = DriftExtremizer(sir_model)
        x = np.array([0.5, 0.2])
        assert ext.support(x, [0.0, 1.0]) == pytest.approx(
            float(sir_model.drift(x, [10.0])[1])
        )

    def test_coordinate_range_ordering(self, sir_model, rng):
        ext = DriftExtremizer(sir_model)
        for _ in range(5):
            x = rng.uniform(0, 1, size=2)
            for i in range(2):
                lo, hi = ext.coordinate_range(x, i)
                assert lo <= hi + 1e-12

    def test_coordinate_range_contains_samples(self, sir_model, rng):
        ext = DriftExtremizer(sir_model)
        x = np.array([0.6, 0.25])
        lo, hi = ext.coordinate_range(x, 1)
        for theta in sir_model.theta_set.sample(rng, 25):
            fi = sir_model.drift(x, theta)[1]
            assert lo - 1e-9 <= fi <= hi + 1e-9

    def test_velocity_envelope_shapes(self, gps_map):
        ext = DriftExtremizer(gps_map)
        lo, hi = ext.velocity_envelope(np.array([0.05, 0.0, 0.05, 0.0]))
        assert lo.shape == (4,) and hi.shape == (4,)
        assert np.all(lo <= hi + 1e-12)
