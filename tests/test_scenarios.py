"""Tests for the declarative scenario subsystem (repro.scenarios)."""

import json

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.models import make_sir_model
from repro.reporting import ExperimentResult
from repro.scenarios import (
    Question,
    ScenarioSpec,
    cache_path,
    get_scenario,
    list_scenarios,
    run_question,
    run_scenario,
)

#: The Fig. 1 golden pins of tests/test_golden_figures.py — the
#: sir-transient scenario must reproduce them through the pipeline.
FIG1_HORIZONS = np.array([0.5, 1.0, 2.0, 3.0])
FIG1_LOWER_I = np.array(
    [0.048982884308, 0.020967067308, 0.015721987839, 0.016318643199]
)
FIG1_UPPER_I = np.array(
    [0.200374571356, 0.142585013127, 0.157089504406, 0.170538327409]
)


class TestCatalog:
    def test_catalog_has_at_least_eight_scenarios(self):
        specs = list_scenarios()
        assert len(specs) >= 8
        names = [s.name for s in specs]
        assert len(set(names)) == len(names)

    def test_every_scenario_describes_itself(self):
        for spec in list_scenarios():
            text = spec.describe()
            assert spec.name in text
            for q in spec.questions:
                assert q.kind in text

    def test_tag_filter(self):
        paper = list_scenarios(tag="paper")
        assert paper and all("paper" in s.tags for s in paper)
        assert len(paper) < len(list_scenarios())

    def test_new_models_are_catalogued(self):
        names = {s.name for s in list_scenarios()}
        assert {"gossip-spread", "repairable-queue", "cdn-cache",
                "autoscaler", "ttl-cache-fleet",
                "csma-contention"} <= names

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(KeyError, match="sir-transient"):
            get_scenario("definitely-not-registered")

    def test_identical_reregistration_is_a_noop(self):
        from repro.scenarios import register_scenario

        spec = get_scenario("sir-transient")
        assert register_scenario(spec) is spec  # no ValueError

    def test_conflicting_registration_raises(self):
        from repro.scenarios import register_scenario
        from repro.scenarios.registry import _REGISTRY

        fresh = get_scenario("sir-transient").with_overrides(
            name="conflict-probe")
        register_scenario(fresh)
        try:
            different = fresh.with_overrides(horizon=9.0)
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(different)
            register_scenario(different, replace=True)
            assert get_scenario("conflict-probe").horizon == 9.0
        finally:
            _REGISTRY.pop("conflict-probe", None)


class TestSpec:
    def test_unknown_question_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown question kind"):
            Question("frobnicate")

    def test_duplicate_kinds_need_labels(self):
        with pytest.raises(ValueError, match="distinct labels"):
            ScenarioSpec(
                name="x", title="t", model_factory=make_sir_model,
                x0=(0.7, 0.3), horizon=1.0,
                questions=(Question("hull"), Question("hull")),
            )

    def test_hash_is_content_addressed_not_name_addressed(self):
        base = get_scenario("sir-transient")
        renamed = base.with_overrides(name="anything-else")
        assert renamed.spec_hash() == base.spec_hash()
        retuned = base.with_overrides(model_kwargs={"theta_max": 12.0})
        assert retuned.spec_hash() != base.spec_hash()
        shortened = base.with_overrides(horizon=2.0)
        assert shortened.spec_hash() != base.spec_hash()

    def test_hash_stable_across_reconstruction(self):
        spec1 = ScenarioSpec(
            name="a", title="t", model_factory=make_sir_model,
            x0=(0.7, 0.3), horizon=1.0,
            model_kwargs={"theta_max": 5.0, "a": 0.1},
            questions=(Question("hull", options={"n_times": 5}),),
        )
        spec2 = ScenarioSpec(
            name="b", title="other", model_factory=make_sir_model,
            x0=[0.7, 0.3], horizon=1.0,
            model_kwargs={"a": 0.1, "theta_max": 5.0},  # different order
            questions=(Question("hull", options={"n_times": 5}),),
        )
        assert spec1.spec_hash() == spec2.spec_hash()

    def test_with_overrides_merges_model_kwargs(self):
        base = get_scenario("sir-steadystate")  # theta_max=4.0
        derived = base.with_overrides(model_kwargs={"theta_min": 2.0})
        assert derived.kwargs == {"theta_max": 4.0, "theta_min": 2.0}
        dropped = derived.with_overrides(model_kwargs={"theta_max": None})
        assert dropped.kwargs == {"theta_min": 2.0}

    def test_question_options_thaw_to_plain_dicts(self):
        q = Question("envelope", options={"times": [0.0, 1.0], "resolution": 3})
        assert q.opts == {"times": [0.0, 1.0], "resolution": 3}

    def test_dict_valued_options_and_kwargs_survive_the_freeze(self):
        q = Question("envelope", options={"nested": {"rtol": 1e-6,
                                                     "grid": [1, 2]}})
        assert q.opts == {"nested": {"rtol": 1e-6, "grid": [1, 2]}}

        # A **kwargs factory: signature validation passes anything
        # through, so arbitrary nested structures round-trip the freeze.
        def var_kwargs_factory(**kwargs):
            return make_sir_model()

        spec = ScenarioSpec(
            name="x", title="t", model_factory=var_kwargs_factory,
            x0=(0.7, 0.3), horizon=1.0,
            model_kwargs={"table": {"a": [1.0, 2.0], "b": {"c": 3}}},
            questions=(Question("hull"),),
        )
        assert spec.kwargs == {"table": {"a": [1.0, 2.0], "b": {"c": 3}}}

    def test_typo_kwarg_rejected_at_construction(self):
        with pytest.raises(TypeError, match="theta_mxa"):
            ScenarioSpec(
                name="x", title="t", model_factory=make_sir_model,
                x0=(0.7, 0.3), horizon=1.0,
                model_kwargs={"theta_mxa": 5.0},
                questions=(Question("hull"),),
            )


class TestRunScenario:
    def test_sir_transient_reproduces_fig1_golden_pins(self, tmp_path):
        run = run_scenario("sir-transient", cache_dir=str(tmp_path))
        assert not run.report.cache_hit
        lower = run.result.series["I_imprecise_lower"]
        upper = run.result.series["I_imprecise_upper"]
        np.testing.assert_allclose(lower.times, FIG1_HORIZONS)
        # rtol 3e-4: the default lane-parallel sweep cold-starts every
        # horizon, so one lane stops ~1e-4 relative from the
        # warm-started value the pins were recorded with (see
        # tests/test_golden_figures.py).
        np.testing.assert_allclose(lower.values, FIG1_LOWER_I,
                                   rtol=3e-4, atol=1e-8)
        np.testing.assert_allclose(upper.values, FIG1_UPPER_I,
                                   rtol=3e-4, atol=1e-8)
        # The uncertain envelope sits inside the imprecise bounds.
        env_upper = run.result.series["I_uncertain_upper"]
        for t, hi in zip(FIG1_HORIZONS, upper.values):
            assert env_upper.at(t) <= hi + 1e-6

    def test_second_run_is_a_cache_hit_with_identical_payload(self, tmp_path):
        first = run_scenario("sir-transient", cache_dir=str(tmp_path))
        second = run_scenario("sir-transient", cache_dir=str(tmp_path))
        assert second.report.cache_hit
        assert second.report.cache_hits == 1
        assert second.report.cache_misses == 0
        assert second.report.questions_run == 0
        assert set(second.result.series) == set(first.result.series)
        for name, series in first.result.series.items():
            np.testing.assert_array_equal(series.times,
                                          second.result.series[name].times)
            np.testing.assert_array_equal(series.values,
                                          second.result.series[name].values)
        assert second.result.findings == pytest.approx(first.result.findings)

    def test_override_invalidates_cache(self, tmp_path):
        base = get_scenario("bike-station")
        run_scenario(base, cache_dir=str(tmp_path))
        derived = base.with_overrides(horizon=3.0, questions=(
            Question("pontryagin", options={"horizons": [1.0, 3.0],
                                            "steps_per_unit": 30}),
        ))
        run = run_scenario(derived, cache_dir=str(tmp_path))
        assert not run.report.cache_hit

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        run = run_scenario("bike-station", use_cache=False,
                           cache_dir=str(tmp_path))
        assert not run.report.cache_hit
        assert run.report.cache_path is None
        assert list(tmp_path.glob("*.json")) == []

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        spec = get_scenario("bike-station")
        path = cache_path(spec, str(tmp_path))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json at all")
        run = run_scenario(spec, cache_dir=str(tmp_path))
        assert not run.report.cache_hit
        # ... and the entry was repaired in passing.
        rerun = run_scenario(spec, cache_dir=str(tmp_path))
        assert rerun.report.cache_hit

    def test_parallel_questions_match_serial(self, tmp_path):
        serial = run_scenario("bike-station", use_cache=False)
        parallel = run_scenario("bike-station", use_cache=False, processes=2)
        assert serial.result.findings == pytest.approx(
            parallel.result.findings
        )
        for name, series in serial.result.series.items():
            np.testing.assert_array_equal(
                series.values, parallel.result.series[name].values
            )

    def test_parallel_works_for_unregistered_adhoc_specs(self):
        """The pool payload carries the spec itself, so ad-hoc variants
        shard too (and nothing depends on worker-side registry state)."""
        spec = get_scenario("bike-station").with_overrides(
            name="adhoc-bike-variant", horizon=3.0)
        serial = run_scenario(spec, use_cache=False)
        parallel = run_scenario(spec, use_cache=False, processes=2)
        assert parallel.result.findings == pytest.approx(
            serial.result.findings
        )

    def test_cache_hit_restamps_renamed_variant(self, tmp_path):
        base = get_scenario("bike-station")
        run_scenario(base, cache_dir=str(tmp_path))
        renamed = base.with_overrides(name="bike-renamed",
                                      title="renamed variant")
        hit = run_scenario(renamed, cache_dir=str(tmp_path))
        assert hit.report.cache_hit  # content-addressed: same hash
        assert hit.result.experiment_id == "bike-renamed"
        assert hit.result.title == "renamed variant"

    def test_bike_imprecise_bounds_contain_envelope(self):
        """Regression: coarse Pontryagin grids on the sliding-boundary
        bike model used to report 'exact' bounds tighter than the
        constant-theta envelope."""
        run = run_scenario("bike-station", use_cache=False)
        f = run.result.findings
        slack = 1e-9
        assert (f["occupied_imprecise_max_final"]
                >= f["occupied_uncertain_max_final"] - slack)
        assert (f["occupied_imprecise_min_final"]
                <= f["occupied_uncertain_min_final"] + slack)

    @pytest.mark.slow
    def test_bike_containment_at_example_demand_set(self):
        """The widened demand set of examples/bike_sharing.py: both
        bound families chatter at O(dt) where the drift slides on the
        occupancy boundary, so containment is pinned up to the
        discretisation tolerance (a true inversion shows at 1e-1).
        Tier-2: the wide interval makes the Pontryagin sweeps slow."""
        spec = get_scenario("bike-station").with_overrides(
            name="bike-example-set",
            model_kwargs={"arrival_bounds": [0.6, 1.4],
                          "return_bounds": [0.8, 1.2]},
        )
        f = run_scenario(spec, use_cache=False).result.findings
        chatter = 2.5e-3
        assert (f["occupied_imprecise_max_final"]
                >= f["occupied_uncertain_max_final"] - chatter)
        assert (f["occupied_imprecise_min_final"]
                <= f["occupied_uncertain_min_final"] + chatter)
        # ... and nothing strays meaningfully outside the physical range.
        assert -chatter <= f["occupied_imprecise_min_final"]
        assert f["occupied_imprecise_max_final"] <= 1.0 + chatter

    def test_ensemble_question_is_seed_deterministic(self):
        spec = get_scenario("bike-station")
        question = next(q for q in spec.questions if q.kind == "ensemble")
        a = run_question(spec, question)
        b = run_question(spec, question)
        assert a.findings == b.findings

    def test_dtmc_reward_question_outcome(self):
        """The interval-DTMC backend: bounds ordered, conservative
        against the exact Kolmogorov bounds, series anchored at the
        reward's start-state value."""
        spec = get_scenario("bike-dtmc-reward")
        question = spec.questions[0]
        out = run_question(spec, question)
        f = out.findings
        assert f["dtmc_states"] == 9.0  # N = 8 racks -> 9 occupancies
        assert f["dtmc_occupied_lower_final"] <= f["dtmc_occupied_upper_final"]
        assert f["dtmc_occupied_conservative"] == 1.0
        assert f["dtmc_occupied_time_lower"] <= f["dtmc_occupied_exact_lower"] + 1e-9
        assert f["dtmc_occupied_time_upper"] >= f["dtmc_occupied_exact_upper"] - 1e-9
        assert (f["dtmc_occupied_stationary_lower"]
                <= f["dtmc_occupied_stationary_upper"])
        times, lower = out.series["dtmc_occupied_lower"]
        assert times[0] == 0.0
        assert lower[0] == pytest.approx(0.5)  # reward at the start state
        assert len(times) == int(f["dtmc_steps"]) + 1

    def test_dtmc_reward_catalog_scenarios_registered(self):
        names = {spec.name for spec in list_scenarios(tag="dtmc")}
        assert {"sir-dtmc-reward", "load-balancing-dtmc",
                "bike-dtmc-reward"} <= names

    def test_cache_entry_from_other_library_version_is_stale(
            self, tmp_path, monkeypatch):
        """An upgrade must not keep serving numbers computed by old
        backend code, even for an unchanged spec."""
        run_scenario("bike-station", cache_dir=str(tmp_path))
        import repro
        monkeypatch.setattr(repro, "__version__", "0.0.0-other")
        rerun = run_scenario("bike-station", cache_dir=str(tmp_path))
        assert not rerun.report.cache_hit

    def test_store_leaves_no_temp_debris_and_clear_sweeps_it(self, tmp_path):
        from repro.scenarios import clear_cache

        run_scenario("bike-station", cache_dir=str(tmp_path))
        assert list(tmp_path.glob("*.tmp")) == []
        # Crashed-writer debris carries the store's own mkstemp naming
        # ("<16-hex-hash>-<random>.tmp"); the sweep removes it...
        (tmp_path / ("ab" * 8 + "-x1y2z3.tmp")).write_text("writer debris")
        # ...but an arbitrary user *.tmp in the directory is not ours.
        foreign = tmp_path / "editor-swap.tmp"
        foreign.write_text("keep me")
        clear_cache(str(tmp_path))
        assert list(tmp_path.glob("*")) == [foreign]

    def test_clear_cache_removes_corrupt_entries_but_not_user_files(
            self, tmp_path):
        from repro.scenarios import clear_cache

        corrupt = tmp_path / ("ab" * 8 + ".json")  # hash-named, truncated
        corrupt.write_text("{truncated")
        user_file = tmp_path / "package.json"
        user_file.write_text('{"name": "not-a-cache-entry"}')
        schema_config = tmp_path / "config.json"  # JSON-schema'd config
        schema_config.write_text('{"schema": "http://example/v1", "x": 1}')
        assert clear_cache(str(tmp_path)) == 1
        assert not corrupt.exists()
        assert user_file.exists()
        assert schema_config.exists()

    def test_cli_clear_cache_by_name_drops_aliased_entries(
            self, tmp_path, capsys):
        """Deletion mirrors the content-addressed lookup: the entry that
        would serve a scenario is dropped even when it was stored under
        a renamed variant."""
        base = get_scenario("bike-station")
        run_scenario(base.with_overrides(name="bike-alias"),
                     cache_dir=str(tmp_path))
        assert cli_main(["clear-cache", "bike-station",
                         "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        fresh = run_scenario(base, cache_dir=str(tmp_path))
        assert not fresh.report.cache_hit

    def test_cached_result_roundtrips_through_json(self, tmp_path):
        run = run_scenario("bike-station", cache_dir=str(tmp_path))
        payload = json.loads(
            cache_path(run.spec, str(tmp_path)).read_text()
        )
        rebuilt = ExperimentResult.from_json(payload["result"])
        assert rebuilt.experiment_id == run.result.experiment_id
        assert rebuilt.findings == pytest.approx(run.result.findings)


class TestCLI:
    def test_list_shows_catalog(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sir-transient" in out
        assert out.count("\n") >= 8

    def test_list_tag_filter(self, capsys):
        assert cli_main(["list", "--tag", "new-model"]) == 0
        out = capsys.readouterr().out
        assert "gossip-spread" in out
        assert "sir-transient" not in out

    def test_describe(self, capsys):
        assert cli_main(["describe", "cdn-cache"]) == 0
        out = capsys.readouterr().out
        assert "make_cdn_cache_model" in out
        assert "spec hash" in out

    def test_describe_unknown_is_an_error(self, capsys):
        assert cli_main(["describe", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_twice_reports_cache_hit(self, tmp_path, capsys):
        args = ["run", "bike-station", "--cache-dir", str(tmp_path)]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert "cache_hit=false" in first
        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert "cache_hit=true" in second
        assert "hits=1" in second

    def test_run_refresh_recomputes_despite_renamed_cache_entry(
            self, tmp_path, capsys):
        """--refresh unlinks by content hash, so it drops the entry even
        when it was stored under a different scenario name."""
        base = get_scenario("bike-station")
        renamed = base.with_overrides(name="bike-alias")
        run_scenario(renamed, cache_dir=str(tmp_path))  # same content hash
        run = run_scenario(base, cache_dir=str(tmp_path))
        assert run.report.cache_hit  # sanity: the alias entry serves base
        assert cli_main(["run", "bike-station", "--refresh",
                         "--cache-dir", str(tmp_path)]) == 0
        assert "cache_hit=false" in capsys.readouterr().out

    def test_clear_cache(self, tmp_path, capsys):
        cli_main(["run", "bike-station", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert cli_main(["clear-cache", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert list(tmp_path.glob("*.json")) == []
