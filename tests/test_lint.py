"""Tests for the static-analysis gate (repro.analysis.lint).

Three layers:

- every pass-1 rule REP001–REP011 fires on its violating fixture in
  ``tests/analysis_fixtures/`` and stays silent on the clean twin;
- the framework mechanics: suppressions (line, bare, file-level), the
  unused-suppression warning REP000, the parse-error finding REP900,
  the cross-file test index, and the report/JSON surface;
- pass 2: the registry audit is clean on the real catalog and catches a
  synthetically bad spec/model;

plus the self-clean gate: ``repro lint --strict`` exits 0 on this repo.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    ALL_CHECKS,
    LintReport,
    all_checks,
    build_test_index,
    lint_source,
    run_lint,
)
from repro.analysis.lint.framework import Finding
from repro.analysis.lint.registry_audit import (
    _check_kernel_declarations,
    audit_registry,
)
from repro.params import Interval
from repro.population import PopulationModel, Transition
from repro.scenarios.registry import _REGISTRY, register_scenario
from repro.scenarios.spec import Question, ScenarioSpec

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: (code, section the fixture is linted as, extra test-index names)
RULE_CASES = [
    ("REP001", "src", frozenset()),
    ("REP002", "src", frozenset()),
    ("REP003", "src", frozenset()),
    ("REP004", "src", frozenset()),
    ("REP005", "src", frozenset()),
    ("REP006", "src", frozenset()),
    ("REP007", "src", frozenset({"covered_kernel_batch"})),
    ("REP008", "src", frozenset()),
    ("REP009", "src", frozenset()),
    ("REP010", "src", frozenset()),
    ("REP011", "src", frozenset()),
]


def _lint_fixture(name, section, test_names=frozenset()):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(text, f"src/repro/{name}", section, all_checks(),
                       test_names=test_names)


class TestRulesFireOnFixtures:
    @pytest.mark.parametrize("code,section,names", RULE_CASES,
                             ids=[c for c, _, _ in RULE_CASES])
    def test_bad_fixture_fires(self, code, section, names):
        findings = _lint_fixture(f"{code.lower()}_bad.py", section, names)
        assert any(f.code == code for f in findings), \
            f"{code} did not fire: {[f.render() for f in findings]}"

    @pytest.mark.parametrize("code,section,names", RULE_CASES,
                             ids=[c for c, _, _ in RULE_CASES])
    def test_clean_fixture_is_silent(self, code, section, names):
        findings = _lint_fixture(f"{code.lower()}_clean.py", section, names)
        assert findings == [], [f.render() for f in findings]

    def test_every_declared_rule_has_fixture_pair(self):
        for cls in ALL_CHECKS:
            stem = cls.code.lower()
            assert (FIXTURES / f"{stem}_bad.py").is_file()
            assert (FIXTURES / f"{stem}_clean.py").is_file()

    def test_rule_metadata_complete(self):
        codes = [cls.code for cls in ALL_CHECKS]
        assert len(codes) == len(set(codes)) >= 10
        for cls in ALL_CHECKS:
            assert cls.title and cls.rationale
            assert set(cls.sections) <= {"src", "tests", "benchmarks"}

    def test_section_scoping(self):
        # print() is a src-only rule: the same text is legal in tests/.
        text = (FIXTURES / "rep005_bad.py").read_text(encoding="utf-8")
        assert lint_source(text, "tests/test_x.py", "tests",
                           all_checks()) == []


class TestSuppressions:
    def test_line_suppression_with_code(self):
        text = "def f(bucket=[]):  # repro: noqa[REP004]\n    return bucket\n"
        assert lint_source(text, "src/repro/x.py", "src", all_checks()) == []

    def test_bare_line_suppression(self):
        text = "def f(bucket=[]):  # repro: noqa\n    return bucket\n"
        assert lint_source(text, "src/repro/x.py", "src", all_checks()) == []

    def test_wrong_code_does_not_suppress(self):
        text = "def f(bucket=[]):  # repro: noqa[REP001]\n    return bucket\n"
        findings = lint_source(text, "src/repro/x.py", "src", all_checks())
        codes = {f.code for f in findings}
        assert "REP004" in codes          # the violation survives
        assert "REP000" in codes          # and the suppression is unused

    def test_file_level_suppression(self):
        text = ("# repro: noqa-file[REP004]\n"
                "def f(bucket=[]):\n    return bucket\n"
                "def g(items={}):\n    return items\n")
        assert lint_source(text, "src/repro/x.py", "src", all_checks()) == []

    def test_unused_suppression_is_warning(self):
        text = "x = 1  # repro: noqa[REP003]\n"
        findings = lint_source(text, "src/repro/x.py", "src", all_checks())
        assert [f.code for f in findings] == ["REP000"]
        assert findings[0].severity == "warning"

    def test_noqa_in_docstring_is_not_a_suppression(self):
        text = '"""Docs mention # repro: noqa[REP004] syntax."""\nx = 1\n'
        assert lint_source(text, "src/repro/x.py", "src", all_checks()) == []

    def test_parse_error_becomes_rep900(self):
        findings = lint_source("def broken(:\n", "src/repro/x.py", "src",
                               all_checks())
        assert [f.code for f in findings] == ["REP900"]

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="section"):
            lint_source("x = 1\n", "x.py", "docs", all_checks())


class TestTestIndex:
    def test_index_collects_names_attributes_and_strings(self, tmp_path):
        test_file = tmp_path / "test_sample.py"
        test_file.write_text(
            "def test_k():\n"
            "    model.jacobian_x_batch(x, th)\n"
            "    fn = getattr(obj, 'stringy_kernel_batch')\n",
            encoding="utf-8",
        )
        names = build_test_index([test_file])
        assert {"jacobian_x_batch", "stringy_kernel_batch"} <= names

    def test_non_test_files_ignored(self, tmp_path):
        helper = tmp_path / "helpers.py"
        helper.write_text("def helper_kernel_batch():\n    pass\n",
                          encoding="utf-8")
        assert "helper_kernel_batch" not in build_test_index([helper])


class TestReport:
    def test_json_schema(self):
        report = LintReport(
            findings=[Finding(file="src/a.py", line=3, code="REP001",
                              message="m")],
            files_checked=1, registry_audited=True,
        )
        payload = json.loads(report.render_json())
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["registry_audited"] is True
        assert payload["counts"] == {"errors": 1, "warnings": 0}
        assert payload["findings"][0] == {
            "file": "src/a.py", "line": 3, "code": "REP001",
            "severity": "error", "message": "m",
        }

    def test_exit_codes(self):
        warning = Finding(file="a.py", line=1, code="REP000", message="m",
                          severity="warning")
        error = Finding(file="a.py", line=1, code="REP004", message="m")
        assert LintReport().exit_code(strict=True) == 0
        assert LintReport(findings=[warning]).exit_code() == 0
        assert LintReport(findings=[warning]).exit_code(strict=True) == 1
        assert LintReport(findings=[error]).exit_code() == 1


def _batchless_factory():
    """A model declaring neither batch kernel (REG001 bait)."""
    tr = Transition("t", [1.0], lambda x, th: x[0] * th[0])
    return PopulationModel("batchless", ("x",), [tr], Interval(0.0, 2.0))


def _uncompilable_factory():
    """A model whose rate captures a mutable container (REG005 bait)."""
    table = {"scale": 2.0}
    tr = Transition("t", [1.0], lambda x, th: table["scale"] * x[0] * th[0])
    return PopulationModel("uncompilable", ("x",), [tr], Interval(0.0, 2.0))


class TestRegistryAudit:
    def test_real_catalog_is_clean(self):
        assert audit_registry() == []

    def test_declaration_properties_reflect_kernels(self):
        bare = _batchless_factory()
        assert not bare.declares_affine_drift_batch
        assert not bare.declares_drift_jacobian_batch
        from repro.models import make_sir_model

        sir = make_sir_model()
        assert sir.declares_affine_drift_batch
        assert sir.declares_drift_jacobian_batch

    def test_bad_scenario_is_caught(self):
        spec = ScenarioSpec(
            name="lint-test-bad-scenario",
            title="synthetic audit bait",
            model_factory=_batchless_factory,
            x0=(0.5,),
            horizon=1.0,
            questions=(Question("envelope", options={"n_times": 3}),),
            observables=("x",),
            golden={"pin": 1.0},     # golden without validity -> REG004
        )
        register_scenario(spec)
        try:
            findings = audit_registry()
        finally:
            _REGISTRY.pop(spec.name, None)
        codes = [f.code for f in findings]
        assert codes.count("REG001") == 1    # both kernels undeclared
        assert "REG004" in codes
        messages = " ".join(f.message for f in findings)
        assert "lint-test-bad-scenario" in messages

    def test_uncompilable_kernel_fires_reg005(self):
        findings = []
        _check_kernel_declarations(
            "lint-test-uncompilable", _uncompilable_factory(), findings
        )
        assert [f.code for f in findings] == ["REG005"]
        assert "rate:t" in findings[0].message
        assert "container" in findings[0].message

    def test_uncompilable_registered_scenario_is_caught(self):
        spec = ScenarioSpec(
            name="lint-test-uncompilable-scenario",
            title="synthetic REG005 bait",
            model_factory=_uncompilable_factory,
            x0=(0.5,),
            horizon=1.0,
            questions=(Question("envelope", options={"n_times": 3}),),
            observables=("x",),
        )
        register_scenario(spec)
        try:
            findings = audit_registry()
        finally:
            _REGISTRY.pop(spec.name, None)
        reg005 = [f for f in findings if f.code == "REG005"]
        assert len(reg005) == 1
        assert "lint-test-uncompilable-scenario" in reg005[0].message

    def test_compilable_models_stay_silent(self):
        from repro.models import make_sir_model

        findings = []
        _check_kernel_declarations("sir", make_sir_model(), findings)
        assert findings == []


class TestSelfClean:
    def test_repo_lints_clean_under_strict(self):
        report = run_lint(REPO_ROOT)
        assert report.exit_code(strict=True) == 0, report.render_text()
        assert report.registry_audited
        assert report.files_checked > 100

    def test_cli_smoke_json(self, capsys):
        from repro.__main__ import main

        code = main(["lint", "--root", str(REPO_ROOT), "--no-registry",
                     "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["findings"] == []


class TestRunLint:
    def test_bad_root_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="src/repro"):
            run_lint(tmp_path)

    def test_fixture_directory_is_excluded(self):
        # The deliberately violating fixtures must never reach discovery.
        from repro.analysis.lint.framework import discover_files

        files = discover_files(REPO_ROOT)
        all_paths = [p for paths in files.values() for p in paths]
        assert all("analysis_fixtures" not in p.parts for p in all_paths)
        assert any(p.name == "test_lint.py" for p in files["tests"])
