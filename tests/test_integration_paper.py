"""Integration tests: the paper's end-to-end claims, at reduced scale.

Each test here crosses several packages (models + bounds + steadystate +
simulation) and asserts the *shape* results the paper's figures report.
The full-scale regenerations live in ``benchmarks/``; these are the fast
versions that gate the build.
"""

import numpy as np
import pytest

from repro.bounds import (
    differential_hull_bounds,
    extremal_trajectory,
    pontryagin_transient_bounds,
    switching_times,
    uncertain_envelope,
)
from repro.inclusion import ParametricInclusion
from repro.models import (
    gps_initial_state_map,
    gps_initial_state_poisson,
    make_gps_map_model,
    make_gps_poisson_model,
    make_sir_model,
)
from repro.simulation import HysteresisPolicy, RandomJumpPolicy, simulate
from repro.steadystate import birkhoff_centre_2d, uncertain_fixed_points


class TestFigure1:
    """Imprecise bounds strictly contain the uncertain envelope."""

    @pytest.mark.slow
    def test_imprecise_exceeds_uncertain_at_large_t(self, sir_model, sir_x0):
        horizons = np.array([3.0, 4.0])
        imprecise = pontryagin_transient_bounds(
            sir_model, sir_x0, horizons, observables=["I"], steps_per_unit=80,
        )
        env = uncertain_envelope(sir_model, sir_x0,
                                 np.concatenate([[0.0], horizons]),
                                 resolution=41)
        for k in range(2):
            upper_gap = imprecise.upper["I"][k] - env.upper["I"][k + 1]
            assert upper_gap > 0.02  # strict inclusion, growing with t
            assert imprecise.lower["I"][k] <= env.lower["I"][k + 1] + 1e-6


class TestFigure2:
    """Bang-bang optimal trajectories and their re-simulation."""

    @pytest.mark.slow
    def test_replay_of_bang_bang_control_attains_value(self, sir_model, sir_x0):
        result = extremal_trajectory(sir_model, sir_x0, 3.0, [0.0, 1.0],
                                     n_steps=300)
        switches = switching_times(result)
        assert len(switches) == 1
        # Re-simulate through the inclusion with the recovered schedule.
        inclusion = ParametricInclusion(sir_model)
        schedule = [(0.0, [1.0]), (switches[0], [10.0])]
        replay = inclusion.solve_piecewise(schedule, sir_x0, 3.0)
        assert replay.final_state[1] == pytest.approx(result.value, abs=2e-3)


class TestFigure3:
    """Birkhoff centre strictly contains the uncertain fixed points."""

    @pytest.mark.slow
    def test_steady_state_inclusion_strict(self, sir_model):
        region = birkhoff_centre_2d(sir_model, x0_guess=[0.7, 0.05])
        assert region.converged
        curve = uncertain_fixed_points(sir_model, resolution=15)
        for fp in curve:
            assert region.contains(fp, tol=1e-3)
        vertices = region.polygon.vertices
        assert vertices[:, 0].min() < curve[:, 0].min() - 0.01
        assert vertices[:, 1].max() > curve[:, 1].max() + 0.01


class TestFigures4And5:
    """Hull accuracy degrades non-linearly in theta_max."""

    def test_hull_vs_pontryagin_tightness(self, sir_x0):
        t_grid = np.linspace(0, 6, 13)
        model = make_sir_model(theta_max=2.0)
        hull = differential_hull_bounds(model, sir_x0, t_grid)
        tight = pontryagin_transient_bounds(
            model, sir_x0, t_grid[1:], observables=["I"], steps_per_unit=50,
        )
        # The hull is sound (outside the tight bounds)...
        for k in range(1, t_grid.shape[0]):
            assert hull.lower[k, 1] <= tight.lower["I"][k - 1] + 1e-6
            assert hull.upper[k, 1] >= tight.upper["I"][k - 1] - 1e-6
        # ...and not absurdly loose for a narrow Theta.
        hull_width = hull.upper[-1, 1] - hull.lower[-1, 1]
        tight_width = tight.upper["I"][-1] - tight.lower["I"][-1]
        assert hull_width < 10.0 * max(tight_width, 1e-3)

    def test_hull_becomes_trivial_at_6(self, sir_x0):
        model = make_sir_model(theta_max=6.0)
        hull = differential_hull_bounds(model, sir_x0, np.linspace(0, 10, 21))
        assert hull.is_trivial(1)


class TestFigure6:
    """SSA stationary samples concentrate on the Birkhoff centre."""

    @pytest.mark.slow
    def test_both_policies_concentrate(self, sir_model):
        from repro.analysis import birkhoff_inclusion_fraction

        region = birkhoff_centre_2d(sir_model, x0_guess=[0.7, 0.05])
        policies = {
            "theta1": HysteresisPolicy([1.0], [10.0], coordinate=0,
                                       low_threshold=0.5,
                                       high_threshold=0.85),
            "theta2": RandomJumpPolicy(sir_model.theta_set,
                                       rate_fn=lambda t, x: 5.0 * x[1]),
        }
        for name, policy in policies.items():
            pop = sir_model.instantiate(1000, [0.7, 0.3])
            run = simulate(pop, policy, 60.0,
                           rng=np.random.default_rng(hash(name) % 2**31),
                           n_samples=600)
            stats = birkhoff_inclusion_fraction(
                run, region, burn_in=20.0, epsilon=3.0 / np.sqrt(1000),
            )
            assert stats.fraction_inside > 0.85, name


class TestFigure7:
    """GPS: Poisson coincidence vs MAP gap."""

    @pytest.mark.slow
    def test_poisson_imprecise_equals_uncertain(self):
        model = make_gps_poisson_model()
        x0 = gps_initial_state_poisson()
        for name in ("Q1", "Q2"):
            res = extremal_trajectory(model, x0, 5.0,
                                      model.observables[name], n_steps=200)
            env = uncertain_envelope(model, x0, np.array([0.0, 5.0]),
                                     resolution=9, observables=[name])
            assert res.value == pytest.approx(env.upper[name][-1], abs=2e-3)

    @pytest.mark.slow
    def test_map_imprecise_strictly_exceeds_uncertain(self):
        model = make_gps_map_model()
        x0 = gps_initial_state_map()
        res = extremal_trajectory(model, x0, 5.0, model.observables["Q1"],
                                  n_steps=200)
        env = uncertain_envelope(model, x0, np.array([0.0, 5.0]),
                                 resolution=7, observables=["Q1"])
        assert res.value > env.upper["Q1"][-1] + 0.05

    def test_monotone_queue_intuition_poisson(self):
        """Higher constant arrival rate -> higher queue (the paper's
        'the higher lambda, the more congested' intuition)."""
        model = make_gps_poisson_model()
        x0 = gps_initial_state_poisson()
        inclusion = ParametricInclusion(model)
        low = inclusion.solve_constant(model.theta_set.lowers, x0, (0, 5))
        high = inclusion.solve_constant(model.theta_set.uppers, x0, (0, 5))
        assert high.final_state[0] > low.final_state[0]
        assert high.final_state[1] > low.final_state[1]


class TestKolmogorovConsistency:
    """Finite-N exact bounds vs mean-field bounds on the same model."""

    @pytest.mark.slow
    def test_ctmc_expected_density_within_meanfield_bounds(self):
        from repro.ctmc import ImpreciseCTMC, imprecise_reward_bounds

        model = make_sir_model()
        chain = ImpreciseCTMC(model.instantiate(30, [0.7, 0.3]))
        reward = chain.densities()[:, 1]  # expected infected fraction
        horizon = 1.0
        exact_max = imprecise_reward_bounds(chain, reward, horizon,
                                            maximize=True, n_steps=120)
        mf = pontryagin_transient_bounds(model, [0.7, 0.3],
                                         np.array([horizon]),
                                         observables=["I"],
                                         steps_per_unit=120)
        # The expectation of a mean-field-bounded quantity at finite N is
        # close to (and for this monotone-ish model inside) the limit
        # bounds, up to an O(1/N) correction.
        assert exact_max.value <= mf.upper["I"][0] + 0.05
        assert exact_max.value >= mf.lower["I"][0] - 0.05
