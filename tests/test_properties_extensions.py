"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ctmc import IntervalDTMC
from repro.geometry import ConvexPolygon, intersection_area, polygon_area
from repro.models import make_power_of_d_model

FAST = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

probs = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-5.0, max_value=5.0,
                         allow_nan=False, allow_infinity=False)


def random_interval_dtmc(data, n: int) -> IntervalDTMC:
    """Draw a consistent interval chain around a random stochastic matrix."""
    rows = []
    for _ in range(n):
        raw = np.array([data.draw(probs) + 1e-3 for _ in range(n)])
        rows.append(raw / raw.sum())
    center = np.array(rows)
    width = data.draw(st.floats(min_value=0.0, max_value=0.3))
    lower = np.clip(center - width, 0.0, 1.0)
    upper = np.clip(center + width, 0.0, 1.0)
    return IntervalDTMC(lower, upper)


class TestIntervalDTMCProperties:
    @FAST
    @given(data=st.data())
    def test_extreme_rows_are_distributions(self, data):
        n = data.draw(st.integers(2, 5))
        dtmc = random_interval_dtmc(data, n)
        reward = np.array([data.draw(small_floats) for _ in range(n)])
        for row in range(n):
            p = dtmc.extreme_row(row, reward)
            assert p.sum() == pytest.approx(1.0, abs=1e-9)
            assert np.all(p >= dtmc.lower[row] - 1e-12)
            assert np.all(p <= dtmc.upper[row] + 1e-12)

    @FAST
    @given(data=st.data())
    def test_upper_dominates_lower_everywhere(self, data):
        n = data.draw(st.integers(2, 4))
        dtmc = random_interval_dtmc(data, n)
        reward = np.array([data.draw(small_floats) for _ in range(n)])
        steps = data.draw(st.integers(0, 5))
        lo, hi = dtmc.expectation_bounds(reward, steps)
        assert np.all(lo <= hi + 1e-9)

    @FAST
    @given(data=st.data())
    def test_operator_monotone(self, data):
        """r <= s pointwise implies T̄ r <= T̄ s pointwise."""
        n = data.draw(st.integers(2, 4))
        dtmc = random_interval_dtmc(data, n)
        r = np.array([data.draw(small_floats) for _ in range(n)])
        bump = np.array([abs(data.draw(small_floats)) for _ in range(n)])
        tr = dtmc.upper_operator(r)
        ts = dtmc.upper_operator(r + bump)
        assert np.all(tr <= ts + 1e-9)

    @FAST
    @given(data=st.data())
    def test_operator_bounded_by_reward_range(self, data):
        n = data.draw(st.integers(2, 4))
        dtmc = random_interval_dtmc(data, n)
        r = np.array([data.draw(small_floats) for _ in range(n)])
        out = dtmc.upper_operator(r)
        assert np.all(out <= r.max() + 1e-9)
        assert np.all(out >= r.min() - 1e-9)

    @FAST
    @given(data=st.data())
    def test_constant_shift_equivariance(self, data):
        """T̄ (r + c) = T̄ r + c for constants c."""
        n = data.draw(st.integers(2, 4))
        dtmc = random_interval_dtmc(data, n)
        r = np.array([data.draw(small_floats) for _ in range(n)])
        c = data.draw(small_floats)
        np.testing.assert_allclose(
            dtmc.upper_operator(r + c), dtmc.upper_operator(r) + c, atol=1e-9
        )


def random_convex(data, n: int) -> np.ndarray:
    pts = np.array(
        [[data.draw(small_floats), data.draw(small_floats)] for _ in range(n)]
    )
    try:
        return ConvexPolygon(pts).vertices
    except ValueError:
        return None


class TestClippingProperties:
    @FAST
    @given(data=st.data())
    def test_intersection_bounded_by_operands(self, data):
        a = random_convex(data, 8)
        b = random_convex(data, 8)
        if a is None or b is None:
            return
        inter = intersection_area(a, b)
        assert inter >= -1e-12
        assert inter <= abs(polygon_area(a)) + 1e-9
        assert inter <= abs(polygon_area(b)) + 1e-9

    @FAST
    @given(data=st.data())
    def test_intersection_symmetric(self, data):
        a = random_convex(data, 7)
        b = random_convex(data, 7)
        if a is None or b is None:
            return
        scale = max(abs(polygon_area(a)), abs(polygon_area(b)), 1.0)
        assert intersection_area(a, b) == pytest.approx(
            intersection_area(b, a), abs=1e-7 * scale
        )

    @FAST
    @given(data=st.data())
    def test_self_intersection_is_identity(self, data):
        a = random_convex(data, 9)
        if a is None:
            return
        area = abs(polygon_area(a))
        assert intersection_area(a, a) == pytest.approx(area, rel=1e-6,
                                                        abs=1e-9)


class TestLoadBalancerProperties:
    @FAST
    @given(lam=st.floats(min_value=0.7, max_value=0.95),
           frac=st.floats(min_value=0.05, max_value=0.95))
    def test_drift_preserves_tail_ordering_margins(self, lam, frac):
        """On monotone tails the drift keeps x in [0, 1]^K at the faces."""
        model = make_power_of_d_model(buffer_depth=5)
        x = np.array([frac ** (2**k - 1) for k in range(1, 6)])
        drift = model.drift(x, [lam])
        assert np.all(np.isfinite(drift))
        # At x_k = 0 with x_{k+1} = 0 the drift is non-negative.
        x_zero = x.copy()
        x_zero[-1] = 0.0
        assert model.drift(x_zero, [lam])[-1] >= -1e-12

    @FAST
    @given(lam=st.floats(min_value=0.7, max_value=0.95))
    def test_affine_identity_random_states(self, lam):
        model = make_power_of_d_model(buffer_depth=5)
        rng = np.random.default_rng(int(lam * 1e6) % 2**31)
        x = np.sort(rng.uniform(0, 1, size=5))[::-1]
        g0, big_g = model.affine_parts(x)
        np.testing.assert_allclose(
            g0 + big_g @ [lam], model.drift(x, [lam]), atol=1e-10
        )
