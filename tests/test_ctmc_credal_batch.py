"""Differential suite for the batched credal-operator kernels.

Pins the batched interval-DTMC machinery against the legacy scalar
paths with *exact* equality — the batch kernels reproduce the legacy
knapsack's sequential rounding and share its final contraction, so any
deviation at all is a bug.  The catalog-derived half of the suite also
discharges the promise in the :mod:`repro.ctmc.interval_dtmc` module
docstring: the entry-wise interval relaxation is conservative with
respect to the exact imprecise-CTMC bounds of
:func:`repro.ctmc.imprecise_reward_bounds`.

CI runs this file with a skip detector: every test here must execute.
"""

import numpy as np
import pytest

from repro.bounds.sweep import uncertain_envelope
from repro.ctmc import (
    ImpreciseCTMC,
    IntervalDTMC,
    imprecise_reward_bounds,
    uncertain_reward_envelope,
)
from repro.ctmc.interval_dtmc import random_interval_dtmc
from repro.models import (
    make_bike_station_model,
    make_power_of_d_model,
    make_sir_full_model,
)

#: (n_states, interval width, seed) triples for the random-chain half.
RANDOM_CASES = [(2, 0.05, 0), (7, 0.15, 1), (23, 0.08, 2), (60, 0.02, 3)]


def _scalar_rows(dtmc, reward, maximize):
    return np.array(
        [dtmc.extreme_row(i, reward, maximize=maximize)
         for i in range(dtmc.n_states)]
    )


@pytest.fixture(scope="module")
def catalog_chains():
    """Small finite chains derived from the catalog model families."""
    chains = {}
    bike = make_bike_station_model()
    chains["bike"] = ImpreciseCTMC(bike.instantiate(8, [0.5]))
    sir = make_sir_full_model()
    chains["sir"] = ImpreciseCTMC(sir.instantiate(5, [0.6, 0.4, 0.0]))
    pod = make_power_of_d_model(buffer_depth=3)
    chains["power_of_d"] = ImpreciseCTMC(pod.instantiate(5, [0.4, 0.0, 0.0]))
    return chains


class TestRandomChainsDifferential:
    @pytest.mark.parametrize("n,width,seed", RANDOM_CASES)
    def test_extreme_rows_bit_identical(self, n, width, seed):
        rng = np.random.default_rng(seed)
        dtmc = random_interval_dtmc(n, rng, width=width)
        for reward in (rng.normal(size=n), rng.random(n), np.zeros(n)):
            for maximize in (True, False):
                batch = dtmc.extreme_rows_batch(reward, maximize=maximize)
                legacy = _scalar_rows(dtmc, reward, maximize)
                assert np.array_equal(batch, legacy)

    @pytest.mark.parametrize("n,width,seed", RANDOM_CASES)
    def test_operator_and_iterates_bit_identical(self, n, width, seed):
        rng = np.random.default_rng(100 + seed)
        dtmc = random_interval_dtmc(n, rng, width=width)
        reward = rng.normal(size=n)
        assert np.array_equal(
            dtmc.upper_operator(reward),
            dtmc.upper_operator(reward, batch=False),
        )
        assert np.array_equal(
            dtmc.lower_operator(reward),
            dtmc.lower_operator(reward, batch=False),
        )
        # 40 iterations compound any rounding divergence into visibility.
        assert np.array_equal(
            dtmc.upper_expectation(reward, 40),
            dtmc.upper_expectation(reward, 40, batch=False),
        )
        lo_b, hi_b = dtmc.expectation_bounds(reward, 25)
        lo_s, hi_s = dtmc.expectation_bounds(reward, 25, batch=False)
        assert np.array_equal(lo_b, lo_s)
        assert np.array_equal(hi_b, hi_s)

    def test_reward_stacks_match_per_reward_legacy(self):
        rng = np.random.default_rng(7)
        dtmc = random_interval_dtmc(17, rng, width=0.1)
        stack = rng.normal(size=(6, 17))
        rows = dtmc.extreme_rows_batch(stack)
        values = dtmc.upper_operator_batch(stack)
        lo, hi = dtmc.expectation_bounds_batch(stack, 12)
        for k in range(stack.shape[0]):
            assert np.array_equal(rows[k], _scalar_rows(dtmc, stack[k], True))
            assert np.array_equal(
                values[k], dtmc.upper_operator(stack[k], batch=False)
            )
            lo_k, hi_k = dtmc.expectation_bounds(stack[k], 12, batch=False)
            assert np.array_equal(lo[k], lo_k)
            assert np.array_equal(hi[k], hi_k)

    def test_stationary_bounds_bit_identical(self):
        rng = np.random.default_rng(11)
        dtmc = random_interval_dtmc(9, rng, width=0.05)
        reward = rng.random(9)
        assert dtmc.stationary_expectation_bounds(reward) == \
            dtmc.stationary_expectation_bounds(reward, batch=False)


class TestCatalogChainsDifferential:
    @pytest.mark.parametrize("key", ["bike", "sir", "power_of_d"])
    def test_uniformized_kernels_bit_identical(self, key, catalog_chains):
        chain = catalog_chains[key]
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(chain)
        reward = chain.densities() @ np.ones(chain.states.shape[1])
        for maximize in (True, False):
            assert np.array_equal(
                dtmc.extreme_rows_batch(reward, maximize=maximize),
                _scalar_rows(dtmc, reward, maximize),
            )
        steps = max(1, int(np.ceil(1.0 * rate)))
        lo_b, hi_b = dtmc.expectation_bounds(reward, steps)
        lo_s, hi_s = dtmc.expectation_bounds(reward, steps, batch=False)
        assert np.array_equal(lo_b, lo_s)
        assert np.array_equal(hi_b, hi_s)

    @pytest.mark.parametrize("key,horizon", [
        ("bike", 2.0), ("sir", 1.0), ("power_of_d", 1.0),
    ])
    def test_interval_dtmc_encloses_exact_bounds(self, key, horizon,
                                                 catalog_chains):
        """The docstring-promised conservativeness, catalog-wide.

        The Poisson-mixed bounds enclose by construction, so the
        tolerance only absorbs the Pontryagin reference's own grid
        error; the raw step power is additionally biased by its
        O(1/rate) time discretization and gets a matching allowance.
        """
        chain = catalog_chains[key]
        reward = chain.densities()[:, 0]
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(chain)
        exact_hi = imprecise_reward_bounds(
            chain, reward, horizon, maximize=True, n_steps=200
        ).value
        exact_lo = imprecise_reward_bounds(
            chain, reward, horizon, maximize=False, n_steps=200
        ).value
        mixed_lo, mixed_hi = dtmc.uniformized_bounds(reward, horizon, rate)
        assert mixed_hi[0] >= exact_hi - 1e-6
        assert mixed_lo[0] <= exact_lo + 1e-6
        assert mixed_lo[0] <= mixed_hi[0]
        steps = int(np.ceil(horizon * rate))
        lo, hi = dtmc.expectation_bounds(reward, steps)
        discretization = 1.0 / rate
        assert hi[0] >= exact_hi - discretization
        assert lo[0] <= exact_lo + discretization

    @pytest.mark.parametrize("key", ["bike", "sir"])
    def test_uniformized_bounds_bit_identical(self, key, catalog_chains):
        chain = catalog_chains[key]
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(chain)
        reward = chain.densities()[:, 0]
        lo_b, hi_b = dtmc.uniformized_bounds(reward, 1.0, rate)
        lo_s, hi_s = dtmc.uniformized_bounds(reward, 1.0, rate, batch=False)
        assert np.array_equal(lo_b, lo_s)
        assert np.array_equal(hi_b, hi_s)

    def test_uniformized_bounds_stack_matches_single(self, catalog_chains):
        chain = catalog_chains["sir"]
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(chain)
        stack = np.stack([chain.densities()[:, 0], chain.densities()[:, 1]])
        lo, hi = dtmc.uniformized_bounds(stack, 0.8, rate)
        for j in range(stack.shape[0]):
            lo_j, hi_j = dtmc.uniformized_bounds(stack[j], 0.8, rate)
            assert np.array_equal(lo[j], lo_j)
            assert np.array_equal(hi[j], hi_j)


class TestBlockOdeSweep:
    def test_block_ode_matches_legacy_loop(self, catalog_chains):
        """One stacked solve vs one ODE per theta, at solver accuracy.

        The block system shares its adaptive step sequence across
        lanes, so agreement is at integration tolerance (the solves run
        at rtol 1e-9), not bit-for-bit.
        """
        chain = catalog_chains["bike"]
        reward = chain.densities()[:, 0]
        t_eval = np.linspace(0.0, 2.0, 6)
        _, lo_b, hi_b = uncertain_reward_envelope(
            chain, reward, t_eval, resolution=5
        )
        _, lo_s, hi_s = uncertain_reward_envelope(
            chain, reward, t_eval, resolution=5, batch=False
        )
        np.testing.assert_allclose(lo_b, lo_s, atol=1e-8, rtol=0)
        np.testing.assert_allclose(hi_b, hi_s, atol=1e-8, rtol=0)

    def test_block_ode_multi_parameter_chain(self, catalog_chains):
        chain = catalog_chains["sir"]
        reward = (chain.states[:, 1] == 0).astype(float)
        t_eval = np.linspace(0.0, 1.0, 4)
        _, lo_b, hi_b = uncertain_reward_envelope(
            chain, reward, t_eval, resolution=4
        )
        _, lo_s, hi_s = uncertain_reward_envelope(
            chain, reward, t_eval, resolution=4, batch=False
        )
        np.testing.assert_allclose(lo_b, lo_s, atol=1e-8, rtol=0)
        np.testing.assert_allclose(hi_b, hi_s, atol=1e-8, rtol=0)


class TestBatchedRk4Sweep:
    def test_rk4_batch_bit_identical_vectorized_model(self):
        from repro.models import make_sir_model

        model = make_sir_model()
        t_eval = np.linspace(0.0, 2.0, 7)
        kwargs = dict(resolution=7, integrator="rk4", rk4_steps=120)
        env_b = uncertain_envelope(model, [0.7, 0.3], t_eval, **kwargs)
        env_s = uncertain_envelope(model, [0.7, 0.3], t_eval, batch=False,
                                   **kwargs)
        for name in env_b.observable_names:
            assert np.array_equal(env_b.lower[name], env_s.lower[name])
            assert np.array_equal(env_b.upper[name], env_s.upper[name])
            assert np.array_equal(env_b.argmax_theta[name],
                                  env_s.argmax_theta[name])

    def test_rk4_batch_bit_identical_fallback_model(self):
        # Bike rates branch on scalars, so drift_batch falls back to its
        # per-row loop internally — the sweep must still be identical.
        model = make_bike_station_model()
        t_eval = np.linspace(0.0, 3.0, 5)
        kwargs = dict(resolution=3, integrator="rk4", rk4_steps=150)
        env_b = uncertain_envelope(model, [0.6], t_eval, **kwargs)
        env_s = uncertain_envelope(model, [0.6], t_eval, batch=False,
                                   **kwargs)
        assert np.array_equal(env_b.lower["occupied"], env_s.lower["occupied"])
        assert np.array_equal(env_b.upper["occupied"], env_s.upper["occupied"])


class TestBackendDifferential:
    """The knapsack kernel routed through each installed backend.

    numpy must be bit-identical to the direct call; compiled backends
    are pinned at tolerance by ``assert_backend_close``.
    """

    @pytest.mark.parametrize("n,width,seed", RANDOM_CASES[:2])
    def test_extreme_rows_batch(self, n, width, seed, backend_name,
                                assert_backend_close):
        rng = np.random.default_rng(seed)
        dtmc = random_interval_dtmc(n, rng, width=width)
        rewards = rng.normal(size=(3, n))
        for maximize in (True, False):
            reference = dtmc.extreme_rows_batch(rewards, maximize=maximize)
            routed = dtmc.extreme_rows_batch(rewards, maximize=maximize,
                                             backend=backend_name)
            assert_backend_close(routed, reference)

    def test_upper_operator_batch(self, backend_name, assert_backend_close):
        rng = np.random.default_rng(11)
        dtmc = random_interval_dtmc(9, rng, width=0.1)
        values = rng.normal(size=(4, 9))
        reference = dtmc.upper_operator_batch(values)
        routed = dtmc.upper_operator_batch(values, backend=backend_name)
        assert_backend_close(routed, reference)

    def test_expectation_bounds_batch(self, backend_name,
                                      assert_backend_close):
        rng = np.random.default_rng(12)
        dtmc = random_interval_dtmc(7, rng, width=0.08)
        rewards = rng.normal(size=(2, 7))
        ref_lo, ref_hi = dtmc.expectation_bounds_batch(rewards, steps=6)
        lo, hi = dtmc.expectation_bounds_batch(rewards, steps=6,
                                               backend=backend_name)
        assert_backend_close(lo, ref_lo)
        assert_backend_close(hi, ref_hi)
