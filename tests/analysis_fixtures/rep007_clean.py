"""Fixture: batch kernel whose name appears in the test index (clean).

The lint tests pass ``test_names={"covered_kernel_batch"}``; a private
helper is exempt regardless.
"""


def covered_kernel_batch(xs):
    return xs


def _internal_helper_batch(xs):
    return xs
