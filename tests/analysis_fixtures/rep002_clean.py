"""Fixture: broad handler that stamps the failure before recovering."""
import warnings


def load(path):
    try:
        return open(path).read()
    except Exception as exc:
        warnings.warn(f"unreadable {path}: {exc}")
        return None
