"""Fixture: stdout and wall-clock in library code (REP005 fires twice)."""
import time


def timed(x):
    print(x)
    return time.time()
