"""Fixture: exact equality against a nonzero float literal (REP003)."""


def is_converged(width):
    return width == 1.5
