"""Fixture: unseeded and global-state RNG calls (REP001 fires twice)."""
import numpy as np


def draw():
    rng = np.random.default_rng()
    return rng.uniform() + np.random.normal()
