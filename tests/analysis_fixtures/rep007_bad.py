"""Fixture: public batch kernel no test ever names (REP007)."""


def mystery_kernel_batch(xs):
    return xs
