"""Fixture: chained conversion keeps the causal traceback (clean)."""


def parse(text):
    try:
        return int(text)
    except ValueError as exc:
        raise RuntimeError(f"not an integer: {text!r}") from exc
