"""Fixture: mutable default argument (REP004)."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket
