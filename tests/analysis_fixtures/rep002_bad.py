"""Fixture: broad exception handler that swallows silently (REP002)."""


def load(path):
    try:
        return open(path).read()
    except Exception:
        return None
