"""Fixture: assert in library code (REP009)."""


def checked(x):
    assert x > 0, "x must be positive"
    return x
