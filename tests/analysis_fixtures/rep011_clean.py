"""Fixture: bounded (or justified) constant-true loops (clean)."""


def poll(check, max_attempts=5):
    attempts = 0
    while True:
        if check():
            return True
        attempts += 1
        if attempts >= max_attempts:
            return False


def serve(handle_request):
    while True:  # repro: unbounded-ok[accept loop runs until process exit]
        handle_request()


def countdown(start):
    remaining = start
    while remaining > 0:  # data-driven test, not constant-true: never flagged
        remaining -= 1
    return remaining
