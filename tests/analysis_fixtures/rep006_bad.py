"""Fixture: gated telemetry helper called per loop iteration (REP006)."""
from repro import telemetry


def sweep(rows):
    for row in rows:
        telemetry.inc("sweep.rows")
        telemetry.observe("sweep.norm", sum(row))
