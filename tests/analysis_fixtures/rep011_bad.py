"""Fixture: constant-true loop with no recognisable bound (REP011)."""


def drain(queue):
    total = 0
    while True:
        item = queue.get()
        if item is None:
            continue
        total += item
    return total
