"""Fixture: seeded generator threaded in from the caller (clean)."""
import numpy as np


def draw(seed_seq):
    rng = np.random.default_rng(seed_seq)
    return rng.uniform()
