"""Fixture: monotonic clock, no stdout (clean)."""
import time


def timed(x):
    start = time.perf_counter()
    return x, time.perf_counter() - start
