"""Fixture: wildcard import (REP008)."""
from os.path import *  # noqa: F403
