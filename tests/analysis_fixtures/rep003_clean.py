"""Fixture: tolerance comparison; exact-zero sentinel stays legal."""
import numpy as np


def is_converged(width):
    return bool(np.isclose(width, 1.5)) or width == 0.0
