"""Fixture: exception conversion without chaining (REP010)."""


def parse(text):
    try:
        return int(text)
    except ValueError:
        raise RuntimeError(f"not an integer: {text!r}")
