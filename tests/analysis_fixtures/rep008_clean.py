"""Fixture: explicit imports (clean)."""
from os.path import join, split

__all__ = ["join", "split"]
