"""Fixture: None default, container built per call (clean)."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
