"""Fixture: live handles hoisted before the loop (clean)."""
from repro import telemetry


def sweep(rows):
    counter = telemetry.live_counter("sweep.rows")
    hist = telemetry.live_histogram("sweep.norm")
    for row in rows:
        if counter is not None:
            counter.inc()
        if hist is not None:
            hist.observe(sum(row))
    telemetry.inc("sweep.calls")
