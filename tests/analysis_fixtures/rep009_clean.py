"""Fixture: explicit exception survives python -O (clean)."""


def checked(x):
    if x <= 0:
        raise ValueError("x must be positive")
    return x
