"""Edge-case and regression tests across modules."""

import numpy as np
import pytest

from repro.bounds import pontryagin_transient_bounds
from repro.models import make_gps_poisson_model
from repro.models.gps import _gps_share_rate


class TestGPSShareStability:
    """Regression: the GPS share must stay bounded off the orthant.

    Fixed-step integrators overshoot the boundary by a step; the raw
    share has a pole at ``phi . q = 0`` that used to destabilise the
    Pontryagin forward sweep (queues exploding to O(100)).
    """

    def test_negative_queue_clamped(self):
        rate = _gps_share_rate(-0.01, 0.001, 5.0, 1.0, -0.01, (1.0, 1.0), 0.5)
        assert rate == 0.0

    def test_share_bounded_by_capacity_times_mu(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            q1, q2 = rng.uniform(-0.1, 0.6, size=2)
            rate = _gps_share_rate(q1, q2, 5.0, 7.0, q1, (7.0, 1.0), 0.5)
            assert 0.0 <= rate <= 0.5 * 5.0 + 1e-9

    def test_high_weight_sweep_stays_finite(self):
        """The phi_1 = 15 sweep that used to blow up."""
        from repro.analysis.robust import worst_case_objective
        from repro.models import gps_initial_state_map, make_gps_map_model

        model = make_gps_map_model(phi=(15.0, 1.0))
        value = worst_case_objective(
            model, gps_initial_state_map(), 5.0,
            model.observables["Qtotal"], n_steps=120,
        )
        assert 0.0 < value < 2.0  # class fractions bound Qtotal by 2

    def test_drift_bounded_near_empty_system(self):
        model = make_gps_poisson_model()
        for q in ([1e-9, 1e-9], [0.0, 1e-12], [1e-12, 0.0]):
            drift = model.drift(q, [0.875, 1.2])
            assert np.all(np.abs(drift) < 10.0)


class TestTransientBoundsSides:
    def test_upper_only(self, sir_model, sir_x0):
        tb = pontryagin_transient_bounds(
            sir_model, sir_x0, [0.5, 1.0], observables=["I"],
            steps_per_unit=40, sides=("upper",),
        )
        assert np.all(np.isfinite(tb.upper["I"]))
        assert np.all(np.isnan(tb.lower["I"]))

    def test_lower_only(self, sir_model, sir_x0):
        tb = pontryagin_transient_bounds(
            sir_model, sir_x0, [0.5], observables=["I"],
            steps_per_unit=40, sides=("lower",),
        )
        assert np.isfinite(tb.lower["I"][0])
        assert np.isnan(tb.upper["I"][0])

    def test_invalid_sides_rejected(self, sir_model, sir_x0):
        with pytest.raises(ValueError):
            pontryagin_transient_bounds(sir_model, sir_x0, [0.5],
                                        sides=("middle",))
        with pytest.raises(ValueError):
            pontryagin_transient_bounds(sir_model, sir_x0, [0.5], sides=())

    def test_upper_only_matches_both_sides(self, sir_model, sir_x0):
        both = pontryagin_transient_bounds(
            sir_model, sir_x0, [1.0], observables=["I"], steps_per_unit=60,
        )
        upper = pontryagin_transient_bounds(
            sir_model, sir_x0, [1.0], observables=["I"], steps_per_unit=60,
            sides=("upper",),
        )
        assert upper.upper["I"][0] == pytest.approx(both.upper["I"][0],
                                                    abs=1e-9)


class TestMiscellaneousEdges:
    def test_trajectory_extrapolation_clamps(self):
        from repro.ode import Trajectory

        traj = Trajectory([0.0, 1.0], [[0.0], [1.0]])
        # np.interp clamps outside the range: documented behaviour.
        assert traj(2.0)[0] == pytest.approx(1.0)
        assert traj(-1.0)[0] == pytest.approx(0.0)

    def test_simulate_with_nonzero_start(self, sir_model, rng):
        from repro.simulation import ConstantPolicy, simulate

        pop = sir_model.instantiate(100, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 3.0, rng=rng,
                       t_start=1.0, n_samples=20)
        assert run.times[0] == pytest.approx(1.0)
        assert run.times[-1] == pytest.approx(3.0)

    def test_experiment_render_without_series(self):
        from repro.reporting import ExperimentResult

        result = ExperimentResult("x", "empty")
        text = result.render()
        assert "empty" in text

    def test_gps_explicit_lambda_bounds(self):
        model = make_gps_poisson_model(lambda_bounds=((0.2, 0.4), (0.5, 0.9)))
        np.testing.assert_allclose(model.theta_set.lowers, [0.2, 0.5])
        np.testing.assert_allclose(model.theta_set.uppers, [0.4, 0.9])

    def test_extremizer_grid_cache_reused(self, sir_model):
        from repro.inclusion import DriftExtremizer

        ext = DriftExtremizer(sir_model, method="grid", grid_resolution=7)
        ext.maximize_direction([0.5, 0.2], [0.0, 1.0])
        cached = ext._cached_grid
        ext.maximize_direction([0.1, 0.1], [1.0, 0.0])
        assert ext._cached_grid is cached

    def test_kolmogorov_vector_field_consistency(self):
        from repro.ctmc import ImpreciseCTMC, KolmogorovSystem
        from repro.models import make_bike_station_model

        chain = ImpreciseCTMC(
            make_bike_station_model().instantiate(5, [0.4])
        )
        system = KolmogorovSystem(chain)
        p0 = chain.initial_distribution
        theta = np.array([1.0, 1.0])
        np.testing.assert_allclose(
            system.drift_fn(theta)(p0), system.vector_field(theta)(0.0, p0)
        )

    def test_switching_min_dwell_all_same_value(self):
        from repro.bounds import PontryaginResult, switching_times

        times = np.linspace(0.0, 1.0, 6)
        controls = np.full((5, 1), 3.0)
        res = PontryaginResult(
            times=times, states=np.zeros((6, 1)), costates=np.zeros((6, 1)),
            controls=controls, direction=np.array([1.0]), maximize=True,
            value=0.0, converged=True, iterations=1,
        )
        assert switching_times(res, min_dwell=0.5) == []
        assert switching_times(res) == []
