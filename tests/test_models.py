"""Tests of the concrete paper models (repro.models)."""

import numpy as np
import pytest

from repro.models import (
    GPS_PAPER_PARAMS,
    SIR_PAPER_PARAMS,
    gps_initial_state_map,
    gps_initial_state_poisson,
    make_gps_map_model,
    make_gps_poisson_model,
    make_seir_model,
    make_sir_model,
    poisson_rate_from_map,
)
from repro.models.sir import sir_recovered
from repro.population import check_affine_decomposition, numeric_jacobian


class TestSIRReduced:
    def test_paper_drift_equation_11(self, sir_model):
        # f_S = c - (a+c) S - c I - theta S I ; f_I = a S + theta S I - b I
        a, b, c = 0.1, 5.0, 1.0
        s, i, th = 0.6, 0.2, 4.0
        drift = sir_model.drift([s, i], [th])
        assert drift[0] == pytest.approx(c - (a + c) * s - c * i - th * s * i)
        assert drift[1] == pytest.approx(a * s + th * s * i - b * i)

    def test_affine_decomposition(self, sir_model, rng):
        for _ in range(5):
            x = rng.uniform(0, 1, size=2)
            assert check_affine_decomposition(sir_model, x, rng=rng)

    def test_jacobian_matches_numeric(self, sir_model, rng):
        for _ in range(5):
            x = rng.uniform(0.05, 0.9, size=2)
            theta = sir_model.theta_set.sample(rng, 1)[0]
            analytic = sir_model.jacobian_x(x, theta)
            numeric = numeric_jacobian(lambda y: sir_model.drift(y, theta), x)
            np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_theta_interval_matches_paper(self, sir_model):
        assert sir_model.theta_set.contains([SIR_PAPER_PARAMS["theta_min"]])
        assert sir_model.theta_set.contains([SIR_PAPER_PARAMS["theta_max"]])
        assert not sir_model.theta_set.contains([0.5])

    def test_observables(self, sir_model):
        assert sir_model.observable("S", [0.7, 0.3]) == pytest.approx(0.7)
        assert sir_model.observable("I", [0.7, 0.3]) == pytest.approx(0.3)

    def test_recovered_helper(self):
        assert sir_recovered([0.7, 0.3]) == pytest.approx(0.0)
        assert sir_recovered([0.5, 0.2]) == pytest.approx(0.3)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            make_sir_model(a=-0.1)

    def test_infection_monotone_in_theta(self, sir_model):
        lo = sir_model.drift([0.5, 0.2], [1.0])[1]
        hi = sir_model.drift([0.5, 0.2], [10.0])[1]
        assert hi > lo


class TestSIRFull:
    def test_conservation_declared_and_preserved(self, sir_full):
        x = np.array([0.7, 0.3, 0.0])
        assert sir_full.check_conservations(x)
        # drift sums to zero -> simplex preserved
        for th in (1.0, 5.0, 10.0):
            assert sir_full.drift(x, [th]).sum() == pytest.approx(0.0, abs=1e-12)

    def test_projection_matches_reduced(self, sir_model, sir_full, rng):
        for _ in range(5):
            s, i = rng.uniform(0.05, 0.45, size=2)
            theta = sir_full.theta_set.sample(rng, 1)[0]
            full = sir_full.drift([s, i, 1.0 - s - i], theta)
            reduced = sir_model.drift([s, i], theta)
            np.testing.assert_allclose(full[:2], reduced, atol=1e-12)

    def test_affine_decomposition(self, sir_full, rng):
        x = np.array([0.5, 0.3, 0.2])
        assert check_affine_decomposition(sir_full, x, rng=rng)

    def test_jacobian_matches_numeric(self, sir_full, rng):
        x = np.array([0.5, 0.3, 0.2])
        theta = np.array([3.0])
        np.testing.assert_allclose(
            sir_full.jacobian_x(x, theta),
            numeric_jacobian(lambda y: sir_full.drift(y, theta), x),
            atol=1e-5,
        )


class TestGPSPoisson:
    def test_paper_lambda_bounds_derived_from_map(self, gps_poisson):
        # lambda'_i = 1/(1/a_i + 1/lambda_i) with the paper's parameters.
        lo1 = poisson_rate_from_map(1.0, 1.0)
        hi1 = poisson_rate_from_map(1.0, 7.0)
        lo2 = poisson_rate_from_map(2.0, 2.0)
        hi2 = poisson_rate_from_map(2.0, 3.0)
        np.testing.assert_allclose(gps_poisson.theta_set.lowers, [lo1, lo2])
        np.testing.assert_allclose(gps_poisson.theta_set.uppers, [hi1, hi2])

    def test_poisson_rate_formula(self):
        assert poisson_rate_from_map(1.0, 1.0) == pytest.approx(0.5)
        assert poisson_rate_from_map(2.0, 2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            poisson_rate_from_map(0.0, 1.0)

    def test_drift_structure(self, gps_poisson):
        x = gps_initial_state_poisson()  # (0.05, 0.05)
        lam = np.array([0.7, 1.1])
        drift = gps_poisson.drift(x, lam)
        # creation - GPS service, per class (n_i = 0.5, c = 0.5):
        den = 0.05 + 0.05
        expected0 = 0.7 * (0.5 - 0.05) - 0.5 * 5.0 * 0.05 / den
        expected1 = 1.1 * (0.5 - 0.05) - 0.5 * 1.0 * 0.05 / den
        assert drift[0] == pytest.approx(expected0)
        assert drift[1] == pytest.approx(expected1)

    def test_empty_system_no_service(self, gps_poisson):
        drift = gps_poisson.drift([0.0, 0.0], [0.7, 1.1])
        # Only creation remains, positive in both classes.
        assert drift[0] > 0 and drift[1] > 0

    def test_affine_decomposition(self, gps_poisson, rng):
        for x in ([0.05, 0.05], [0.3, 0.1], [0.0, 0.2]):
            assert check_affine_decomposition(gps_poisson, np.array(x), rng=rng)

    def test_jacobian_matches_numeric(self, gps_poisson, rng):
        x = np.array([0.12, 0.3])
        theta = np.array([0.7, 1.1])
        np.testing.assert_allclose(
            gps_poisson.jacobian_x(x, theta),
            numeric_jacobian(lambda y: gps_poisson.drift(y, theta), x),
            atol=1e-5,
        )

    def test_observables_rescale_by_class_fraction(self, gps_poisson):
        assert gps_poisson.observable("Q1", [0.05, 0.2]) == pytest.approx(0.1)
        assert gps_poisson.observable("Q2", [0.05, 0.2]) == pytest.approx(0.4)
        assert gps_poisson.observable("Qtotal", [0.05, 0.2]) == pytest.approx(0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_gps_poisson_model(mu=(0.0, 1.0))
        with pytest.raises(ValueError):
            make_gps_poisson_model(fractions=(0.3, 0.3))
        with pytest.raises(ValueError):
            make_gps_poisson_model(capacity=0.0)

    def test_initial_state_helper(self):
        np.testing.assert_allclose(gps_initial_state_poisson(), [0.05, 0.05])
        np.testing.assert_allclose(
            gps_initial_state_poisson((0.2, 0.4), (0.25, 0.75)), [0.05, 0.3]
        )


class TestGPSMap:
    def test_paper_parameters(self, gps_map):
        np.testing.assert_allclose(gps_map.theta_set.lowers, [1.0, 2.0])
        np.testing.assert_allclose(gps_map.theta_set.uppers, [7.0, 3.0])

    def test_state_is_four_dimensional(self, gps_map):
        assert gps_map.dim == 4
        assert gps_map.state_names == ("q1", "e1", "q2", "e2")

    def test_affine_decomposition(self, gps_map, rng):
        for x in ([0.05, 0.0, 0.05, 0.0], [0.1, 0.1, 0.2, 0.05]):
            assert check_affine_decomposition(gps_map, np.array(x), rng=rng)

    def test_jacobian_matches_numeric(self, gps_map):
        x = np.array([0.08, 0.05, 0.12, 0.1])
        theta = np.array([3.0, 2.5])
        np.testing.assert_allclose(
            gps_map.jacobian_x(x, theta),
            numeric_jacobian(lambda y: gps_map.drift(y, theta), x),
            atol=1e-5,
        )

    def test_mass_conserved_per_class(self, gps_map):
        # q_i + e_i + active_i = n_i: drift of (q_i + e_i) = -d active_i.
        x = np.array([0.1, 0.05, 0.15, 0.1])
        drift = gps_map.drift(x, [3.0, 2.5])
        # Class totals stay within [0, n_i]: send+service+activate cancel.
        # The net flow out of (q1, e1) equals the activation flow.
        assert drift[0] + drift[1] == pytest.approx(
            3.0 * (0.5 - 0.1 - 0.05) - 1.0 * 0.05
        )

    def test_initial_state_helper(self):
        np.testing.assert_allclose(
            gps_initial_state_map(), [0.05, 0.0, 0.05, 0.0]
        )

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            make_gps_map_model(activation=(0.0, 1.0))


class TestBike:
    def test_interior_drift(self, bike_model):
        drift = bike_model.drift([0.5], [1.0, 1.2])
        assert drift[0] == pytest.approx(0.2)

    def test_boundary_rates_vanish(self, bike_model):
        assert bike_model.transitions[0].rate_at([0.0], [1.0, 1.0]) == 0.0
        assert bike_model.transitions[1].rate_at([1.0], [1.0, 1.0]) == 0.0

    def test_affine_in_interior(self, bike_model, rng):
        assert check_affine_decomposition(bike_model, np.array([0.5]), rng=rng)

    def test_theta_box(self, bike_model):
        assert bike_model.theta_set.dim == 2
        assert bike_model.theta_set.names == ("theta_a", "theta_r")


class TestSEIR:
    def test_simplex_preserved(self, seir_model):
        x = np.array([0.6, 0.1, 0.1])
        drift = seir_model.drift(x, [4.0])
        # S+E+I+R conserved: d(S+E+I) = -dR = -(bI - c R)
        r = 1.0 - x.sum()
        assert drift.sum() == pytest.approx(-(5.0 * x[2] - 1.0 * r))

    def test_affine_decomposition(self, seir_model, rng):
        assert check_affine_decomposition(
            seir_model, np.array([0.6, 0.1, 0.1]), rng=rng
        )

    def test_jacobian_matches_numeric(self, seir_model):
        x = np.array([0.5, 0.2, 0.1])
        theta = np.array([3.0])
        np.testing.assert_allclose(
            seir_model.jacobian_x(x, theta),
            numeric_jacobian(lambda y: seir_model.drift(y, theta), x),
            atol=1e-5,
        )

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            make_seir_model(sigma=-1.0)

    def test_incubation_delays_infection(self, seir_model, sir_model):
        # At the same state, SEIR routes new infections through E: the
        # instantaneous growth of I comes only from sigma * E.
        drift = seir_model.drift([0.7, 0.0, 0.3], [5.0])
        assert drift[2] == pytest.approx(-5.0 * 0.3)

    def test_paper_params_table(self):
        assert SIR_PAPER_PARAMS["a"] == 0.1
        assert SIR_PAPER_PARAMS["b"] == 5.0
        assert SIR_PAPER_PARAMS["c"] == 1.0
        assert GPS_PAPER_PARAMS["mu"] == (5.0, 1.0)
        assert GPS_PAPER_PARAMS["activation"] == (1.0, 2.0)
