"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import ConvexPolygon, convex_hull, polygon_area
from repro.inclusion import DriftExtremizer
from repro.models import make_sir_model
from repro.params import Box, Interval

FAST = settings(max_examples=50, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False)
unit_floats = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)


class TestIntervalProperties:
    @FAST
    @given(lo=finite_floats, width=st.floats(min_value=0.0, max_value=50.0),
           value=finite_floats)
    def test_projection_is_idempotent_and_inside(self, lo, width, value):
        iv = Interval(lo, lo + width)
        projected = iv.project(value)
        assert iv.contains(projected)
        np.testing.assert_allclose(iv.project(projected), projected)

    @FAST
    @given(lo=finite_floats, width=st.floats(min_value=1e-6, max_value=50.0),
           seed=st.integers(0, 2**16))
    def test_samples_inside(self, lo, width, seed):
        iv = Interval(lo, lo + width)
        rng = np.random.default_rng(seed)
        for s in iv.sample(rng, 5):
            assert iv.contains(s)

    @FAST
    @given(lo=finite_floats, width=st.floats(min_value=0.0, max_value=50.0),
           resolution=st.integers(1, 20))
    def test_grid_inside_and_sorted(self, lo, width, resolution):
        iv = Interval(lo, lo + width)
        grid = iv.grid(resolution).ravel()
        assert np.all(np.diff(grid) >= 0)
        for g in grid:
            assert iv.contains(g)


class TestBoxProperties:
    @FAST
    @given(data=st.data())
    def test_projection_never_moves_interior_points(self, data):
        dims = data.draw(st.integers(1, 4))
        lowers = [data.draw(finite_floats) for _ in range(dims)]
        widths = [data.draw(st.floats(min_value=1e-3, max_value=10.0))
                  for _ in range(dims)]
        box = Box.from_bounds(lowers, [lo + w for lo, w in zip(lowers, widths)])
        fracs = [data.draw(unit_floats) for _ in range(dims)]
        point = box.lowers + np.asarray(fracs) * (box.uppers - box.lowers)
        np.testing.assert_allclose(box.project(point), point, atol=1e-12)

    @FAST
    @given(data=st.data())
    def test_corners_extremal_for_linear_functionals(self, data):
        dims = data.draw(st.integers(1, 3))
        box = Box.from_bounds([0.0] * dims, [1.0] * dims)
        coeffs = np.array([data.draw(finite_floats) for _ in range(dims)])
        corners = box.corners()
        best_corner = np.max(corners @ coeffs)
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        for s in box.sample(rng, 10):
            assert coeffs @ s <= best_corner + 1e-9


class TestHullProperties:
    @FAST
    @given(data=st.data())
    def test_hull_contains_every_input_point(self, data):
        n = data.draw(st.integers(3, 40))
        pts = np.array(
            [[data.draw(finite_floats), data.draw(finite_floats)]
             for _ in range(n)]
        )
        hull = convex_hull(pts)
        if hull.shape[0] < 3:
            return  # degenerate cloud: nothing to check
        poly = ConvexPolygon(hull)
        scale = max(1.0, float(np.abs(pts).max()))
        for p in pts:
            assert poly.distance(p) <= 1e-7 * scale

    @FAST
    @given(data=st.data())
    def test_hull_idempotent(self, data):
        n = data.draw(st.integers(3, 25))
        pts = np.array(
            [[data.draw(finite_floats), data.draw(finite_floats)]
             for _ in range(n)]
        )
        hull1 = convex_hull(pts)
        hull2 = convex_hull(hull1)
        assert abs(polygon_area(hull1) - polygon_area(hull2)) < 1e-9 * max(
            1.0, abs(polygon_area(hull1))
        )

    @FAST
    @given(data=st.data())
    def test_expansion_monotone_in_area(self, data):
        pts = np.array(
            [[data.draw(finite_floats), data.draw(finite_floats)]
             for _ in range(8)]
        )
        extra = np.array([data.draw(finite_floats), data.draw(finite_floats)])
        hull = convex_hull(pts)
        if hull.shape[0] < 3:
            return
        poly = ConvexPolygon(hull)
        grown = poly.expanded_with(extra)
        assert grown.area >= poly.area - 1e-9


class TestExtremizerProperties:
    """The support-function maximiser dominates every sampled member."""

    @FAST
    @given(s=unit_floats, i=unit_floats,
           px=finite_floats, py=finite_floats,
           seed=st.integers(0, 2**16))
    def test_affine_maximiser_dominates_samples(self, s, i, px, py, seed):
        model = make_sir_model()
        ext = DriftExtremizer(model)
        x = np.array([s, i])
        p = np.array([px, py])
        _, best = ext.maximize_direction(x, p)
        rng = np.random.default_rng(seed)
        for theta in model.theta_set.sample(rng, 8):
            assert p @ model.drift(x, theta) <= best + 1e-7 * (1 + abs(best))

    @FAST
    @given(s=unit_floats, i=unit_floats, seed=st.integers(0, 2**16))
    def test_coordinate_range_brackets_samples(self, s, i, seed):
        model = make_sir_model()
        ext = DriftExtremizer(model)
        x = np.array([s, i])
        rng = np.random.default_rng(seed)
        for index in range(2):
            lo, hi = ext.coordinate_range(x, index)
            for theta in model.theta_set.sample(rng, 5):
                value = model.drift(x, theta)[index]
                assert lo - 1e-9 <= value <= hi + 1e-9


class TestDriftProperties:
    @FAST
    @given(s=unit_floats, i=unit_floats,
           th=st.floats(min_value=1.0, max_value=10.0))
    def test_sir_drift_affine_identity(self, s, i, th):
        model = make_sir_model()
        x = np.array([s, i])
        g0, big_g = model.affine_parts(x)
        direct = model.drift(x, [th])
        np.testing.assert_allclose(g0 + big_g @ [th], direct, atol=1e-10)

    @FAST
    @given(s=unit_floats, i=unit_floats,
           th=st.floats(min_value=1.0, max_value=10.0))
    def test_sir_simplex_flow_balance(self, s, i, th):
        """The full model's drift always sums to zero (mass conservation)."""
        from repro.models import make_sir_full_model

        model = make_sir_full_model()
        if s + i > 1.0:
            s, i = s / 2.0, i / 2.0
        x = np.array([s, i, 1.0 - s - i])
        assert model.drift(x, [th]).sum() == pytest.approx(0.0, abs=1e-10)


class TestTrajectoryProperties:
    @FAST
    @given(th=st.floats(min_value=1.0, max_value=10.0),
           horizon=st.floats(min_value=0.1, max_value=3.0))
    def test_sir_ode_stays_in_simplex(self, th, horizon):
        from repro.ode import solve_ode

        model = make_sir_model()
        traj = solve_ode(model.vector_field([th]), [0.7, 0.3], (0, horizon))
        assert np.all(traj.states >= -1e-8)
        assert np.all(traj.states.sum(axis=1) <= 1.0 + 1e-8)
