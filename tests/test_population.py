"""Unit tests for transition classes and population models."""

import numpy as np
import pytest

from repro.params import Interval, Singleton
from repro.population import (
    PopulationModel,
    Transition,
    check_affine_decomposition,
    numeric_jacobian,
)


def two_state_model(theta_set=None):
    """Toy birth-death density model: 0 <-> 1 occupancy."""
    theta_set = theta_set or Interval(1.0, 2.0)
    up = Transition("up", [1.0], lambda x, th: th[0] * (1.0 - x[0]))
    down = Transition("down", [-1.0], lambda x, th: x[0])
    return PopulationModel(
        "toy", ("x",), [up, down], theta_set,
        affine_drift=lambda x: (np.array([-x[0]]), np.array([[1.0 - x[0]]])),
        state_bounds=([0.0], [1.0]),
    )


class TestTransition:
    def test_attributes(self):
        tr = Transition("t", [-1, 1], lambda x, th: x[0])
        assert tr.dim == 2
        np.testing.assert_allclose(tr.change, [-1.0, 1.0])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Transition("", [1.0], lambda x, th: 1.0)

    def test_zero_change_rejected(self):
        with pytest.raises(ValueError):
            Transition("t", [0.0, 0.0], lambda x, th: 1.0)

    def test_matrix_change_rejected(self):
        with pytest.raises(ValueError):
            Transition("t", [[1.0], [0.0]], lambda x, th: 1.0)

    def test_noncallable_rate_rejected(self):
        with pytest.raises(TypeError):
            Transition("t", [1.0], 3.0)

    def test_rate_at_clamps_negative(self):
        tr = Transition("t", [1.0], lambda x, th: -0.5)
        assert tr.rate_at([0.0], [1.0]) == 0.0

    def test_rate_at_nan_raises(self):
        tr = Transition("t", [1.0], lambda x, th: float("nan"))
        with pytest.raises(ValueError):
            tr.rate_at([0.0], [1.0])

    def test_repr(self):
        assert "up" in repr(Transition("up", [1.0], lambda x, th: 1.0))


class TestPopulationModel:
    def test_basic_structure(self):
        model = two_state_model()
        assert model.dim == 1
        assert model.theta_dim == 1
        assert model.is_affine
        assert not model.is_precise
        assert model.state_index("x") == 0

    def test_precise_flag(self):
        model = two_state_model(theta_set=Singleton([1.5]))
        assert model.is_precise

    def test_drift_is_rate_weighted_changes(self):
        model = two_state_model()
        x, theta = np.array([0.25]), np.array([2.0])
        expected = 2.0 * 0.75 - 0.25
        assert model.drift(x, theta)[0] == pytest.approx(expected)

    def test_drift_fn_and_vector_field(self):
        model = two_state_model()
        f = model.drift_fn([1.0])
        g = model.vector_field([1.0])
        x = np.array([0.5])
        np.testing.assert_allclose(f(x), g(0.0, x))

    def test_transition_rates_vector(self):
        model = two_state_model()
        rates = model.transition_rates([0.25], [2.0])
        np.testing.assert_allclose(rates, [1.5, 0.25])

    def test_total_exit_rate(self):
        model = two_state_model()
        assert model.total_exit_rate([0.25], [2.0]) == pytest.approx(1.75)

    def test_affine_parts_match_drift(self):
        model = two_state_model()
        assert check_affine_decomposition(model, np.array([0.3]))

    def test_affine_parts_without_declaration(self):
        up = Transition("up", [1.0], lambda x, th: th[0])
        model = PopulationModel("m", ("x",), [up], Interval(0.0, 1.0))
        assert not model.is_affine
        with pytest.raises(ValueError):
            model.affine_parts([0.0])

    def test_jacobian_analytic_vs_numeric(self):
        analytic = two_state_model()

        def jac(x, theta):
            return np.array([[-theta[0] - 1.0]])

        with_jac = PopulationModel(
            "m", ("x",), analytic.transitions, analytic.theta_set,
            drift_jacobian=jac,
        )
        x, theta = np.array([0.3]), np.array([1.5])
        np.testing.assert_allclose(
            with_jac.jacobian_x(x, theta), analytic.jacobian_x(x, theta),
            atol=1e-6,
        )

    def test_dimension_mismatch_rejected(self):
        up = Transition("up", [1.0, 0.0], lambda x, th: 1.0)
        with pytest.raises(ValueError):
            PopulationModel("m", ("x",), [up], Interval(0.0, 1.0))

    def test_empty_transitions_rejected(self):
        with pytest.raises(ValueError):
            PopulationModel("m", ("x",), [], Interval(0.0, 1.0))

    def test_bad_theta_set_rejected(self):
        up = Transition("up", [1.0], lambda x, th: 1.0)
        with pytest.raises(TypeError):
            PopulationModel("m", ("x",), [up], theta_set=(0.0, 1.0))

    def test_state_bounds_validation(self):
        up = Transition("up", [1.0], lambda x, th: 1.0)
        with pytest.raises(ValueError):
            PopulationModel(
                "m", ("x",), [up], Interval(0.0, 1.0),
                state_bounds=([1.0], [0.0]),
            )

    def test_clip_state(self):
        model = two_state_model()
        np.testing.assert_allclose(model.clip_state([1.5]), [1.0])
        np.testing.assert_allclose(model.clip_state([-0.5]), [0.0])

    def test_clip_without_bounds_is_identity(self):
        up = Transition("up", [1.0], lambda x, th: 1.0)
        model = PopulationModel("m", ("x",), [up], Interval(0.0, 1.0))
        np.testing.assert_allclose(model.clip_state([7.0]), [7.0])

    def test_conservations(self):
        up = Transition("flip", [1.0, -1.0], lambda x, th: x[1])
        model = PopulationModel(
            "m", ("a", "b"), [up], Interval(0.0, 1.0),
            conservations=[([1.0, 1.0], 1.0)],
        )
        assert model.check_conservations([0.4, 0.6])
        assert not model.check_conservations([0.4, 0.5])

    def test_observables(self):
        model = PopulationModel(
            "m", ("a", "b"),
            [Transition("flip", [1.0, -1.0], lambda x, th: x[1])],
            Interval(0.0, 1.0),
            observables={"total": [1.0, 1.0]},
        )
        assert model.observable("total", [0.25, 0.5]) == pytest.approx(0.75)
        with pytest.raises(KeyError):
            model.observable("missing", [0.0, 0.0])

    def test_observable_weights_validated(self):
        with pytest.raises(ValueError):
            PopulationModel(
                "m", ("a",),
                [Transition("up", [1.0], lambda x, th: 1.0)],
                Interval(0.0, 1.0),
                observables={"bad": [1.0, 2.0]},
            )

    def test_repr(self):
        assert "toy" in repr(two_state_model())


class TestNumericJacobian:
    def test_linear_map(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        jac = numeric_jacobian(lambda x: a @ x, np.array([0.5, -0.5]))
        np.testing.assert_allclose(jac, a, atol=1e-6)

    def test_nonlinear(self):
        jac = numeric_jacobian(
            lambda x: np.array([x[0] ** 2, np.sin(x[1])]),
            np.array([2.0, 0.0]),
        )
        np.testing.assert_allclose(jac, [[4.0, 0.0], [0.0, 1.0]], atol=1e-6)


class TestCheckAffine:
    def test_wrong_decomposition_detected(self):
        up = Transition("up", [1.0], lambda x, th: th[0] ** 2)
        model = PopulationModel(
            "bad", ("x",), [up], Interval(0.5, 2.0),
            affine_drift=lambda x: (np.zeros(1), np.ones((1, 1))),
        )
        with pytest.raises(AssertionError):
            check_affine_decomposition(model, np.array([0.5]))

    def test_requires_declaration(self):
        up = Transition("up", [1.0], lambda x, th: th[0])
        model = PopulationModel("m", ("x",), [up], Interval(0.0, 1.0))
        with pytest.raises(ValueError):
            check_affine_decomposition(model, np.array([0.5]))


class TestFinitePopulation:
    def test_lattice_snapping(self):
        model = two_state_model()
        pop = model.instantiate(10, [0.33])
        assert pop.initial_counts[0] == 3
        assert pop.initial_density[0] == pytest.approx(0.3)

    def test_invalid_size(self):
        model = two_state_model()
        with pytest.raises(ValueError):
            model.instantiate(0, [0.5])

    def test_invalid_initial_shape(self):
        model = two_state_model()
        with pytest.raises(ValueError):
            model.instantiate(10, [0.5, 0.5])

    def test_negative_initial_rejected(self):
        model = two_state_model()
        with pytest.raises(ValueError):
            model.instantiate(10, [-0.2])

    def test_aggregate_rates_scale_with_n(self):
        model = two_state_model()
        pop10 = model.instantiate(10, [0.5])
        pop100 = model.instantiate(100, [0.5])
        r10 = pop10.aggregate_rates(pop10.initial_counts, [1.0])
        r100 = pop100.aggregate_rates(pop100.initial_counts, [1.0])
        np.testing.assert_allclose(10.0 * r10, r100)

    def test_boundary_events_disabled(self):
        model = two_state_model()
        pop = model.instantiate(10, [1.0])
        rates = pop.aggregate_rates(pop.initial_counts, [2.0])
        assert rates[0] == 0.0  # "up" would leave the lattice
        assert rates[1] > 0.0

    def test_apply_transition(self):
        model = two_state_model()
        pop = model.instantiate(10, [0.5])
        after = pop.apply(pop.initial_counts, 0)
        assert after[0] == 6

    def test_apply_off_lattice_rejected(self):
        model = two_state_model()
        pop = model.instantiate(10, [1.0])
        with pytest.raises(ValueError):
            pop.apply(pop.initial_counts, 0)

    def test_uniformization_constant_bounds_rates(self):
        model = two_state_model()
        pop = model.instantiate(50, [0.5])
        c = pop.uniformization_constant()
        for frac in np.linspace(0, 1, 11):
            total = 50 * model.total_exit_rate([frac], [2.0])
            assert total <= c

    def test_repr(self):
        model = two_state_model()
        assert "N=10" in repr(model.instantiate(10, [0.5]))
