"""The catalog-wide conformance harness (:mod:`repro.testing`).

Every test here is a thin parametrization over the scenario registry:
registering a :class:`ScenarioSpec` is the entire cost of inheriting
the suite.  (The bound-family ordering check has its own file,
``test_scenarios_ordering.py``, for historical continuity.)

- finite-``N`` ensemble grounding of the mean-field envelope,
- interval-DTMC conservativeness through the runner's own backend,
- batch-vs-scalar kernel agreement on hypothesis-drawn points,
- kwarg perturbation inside declared validity ranges,
- plus the registration-time validation that makes a typo'd factory
  kwarg fail at import instead of minutes into a sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import make_sir_model
from repro.params import DiscreteSet
from repro.scenarios import get_scenario
from repro.scenarios.spec import Question, ScenarioSpec
from repro.testing import (
    ConformanceViolation,
    ScenarioConformance,
    dtmc_cases,
    golden_cases,
    perturbation_cases,
    unique_model_cases,
)
from repro.testing.strategies import unit_fracs, validity_fracs

MODEL_CASES = [pytest.param(s, id=s.name) for s in unique_model_cases()]
DTMC_CASES = [pytest.param(s, id=s.name) for s in dtmc_cases()]
PERTURB_CASES = [pytest.param(s, id=s.name) for s in perturbation_cases()]
GOLDEN_CASES = [pytest.param(s, id=s.name) for s in golden_cases()]

# A couple of structurally distinct perturbation targets for the
# hypothesis-driven property (the full registry sweep runs seeded
# draws in test_perturbation_within_validity below).
PROPERTY_SPECS = ["autoscaler", "ttl-cache-fleet"]


# ----------------------------------------------------------------------
# Catalog-inherited checks
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec", MODEL_CASES)
def test_batch_kernels_agree_with_scalar(spec):
    assert ScenarioConformance(spec).check_batch_consistency() > 0


@pytest.mark.parametrize("spec", MODEL_CASES)
def test_ensemble_mean_inside_envelope(spec):
    ScenarioConformance(spec).check_ensemble()


@pytest.mark.parametrize("spec", DTMC_CASES)
def test_dtmc_bounds_conservative(spec):
    assert ScenarioConformance(spec).check_dtmc_conservative() > 0


@pytest.mark.parametrize("spec", GOLDEN_CASES)
def test_golden_pins_reproduce(spec):
    assert ScenarioConformance(spec).check_golden() > 0


def test_golden_catalog_covers_fig1_and_fig4():
    # The headline figures stay pinned registry-wide; removing the
    # declarations (or the scenarios) must fail loudly, not silently
    # shrink GOLDEN_CASES to nothing.
    assert {s.name for s in golden_cases()} >= {"sir-transient", "sir-hull"}


@pytest.mark.parametrize("spec", PERTURB_CASES)
def test_perturbation_within_validity(spec):
    conf = ScenarioConformance(spec)
    # Seeded interior draw plus both endpoints of every declared range.
    for fracs in (
        None,
        {k: 0.0 for k in spec.validity_ranges},
        {k: 1.0 for k in spec.validity_ranges},
    ):
        assert conf.check_perturbation(fracs=fracs) > 0


# ----------------------------------------------------------------------
# Hypothesis-driven properties (fractions drawn, geometry owned by
# the harness)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", PROPERTY_SPECS)
@settings(max_examples=20)
@given(data=st.data())
def test_property_batch_consistency(name, data):
    conf = ScenarioConformance(get_scenario(name))
    model = conf.model
    state_fracs = data.draw(unit_fracs(4, model.dim), label="state_fracs")
    theta_fracs = data.draw(unit_fracs(4, model.theta_dim),
                            label="theta_fracs")
    assert conf.check_batch_consistency(
        state_fracs=state_fracs, theta_fracs=theta_fracs
    ) > 0


@pytest.mark.parametrize("name", PROPERTY_SPECS)
@settings(max_examples=15)
@given(data=st.data())
def test_property_perturbed_kwargs_stay_sound(name, data):
    spec = get_scenario(name)
    conf = ScenarioConformance(spec)
    fracs = data.draw(validity_fracs(spec), label="kwarg_fracs")
    assert conf.check_perturbation(fracs=fracs, n=2) > 0


# ----------------------------------------------------------------------
# Registration-time spec validation (the typo'd-kwarg regression)
# ----------------------------------------------------------------------

def _spec(**overrides):
    base = dict(
        name="conftest-sir",
        title="throwaway",
        model_factory=make_sir_model,
        x0=(0.7, 0.3),
        horizon=1.0,
        questions=(Question("hull", options={"times": [0.0, 0.5]}),),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def test_typo_kwarg_fails_at_construction():
    # Before the harness, theta_mxa=5.0 surfaced only when a question
    # first *built* the model — possibly never, if the spec was only
    # listed.  Now the spec itself refuses to exist.
    with pytest.raises(TypeError, match="theta_mxa"):
        _spec(model_kwargs={"theta_mxa": 5.0})


def test_valid_kwargs_accepted():
    assert _spec(model_kwargs={"theta_max": 5.0}).kwargs == {
        "theta_max": 5.0
    }


def test_validity_key_must_be_factory_kwarg():
    with pytest.raises(TypeError, match="nope"):
        _spec(validity={"nope": (0.1, 0.2)})


def test_validity_range_must_be_ordered_finite():
    with pytest.raises(ValueError, match="low <= high"):
        _spec(validity={"theta_max": (2.0, 1.0)})
    with pytest.raises(ValueError, match="pair"):
        _spec(validity={"theta_max": 3.0})


def test_validity_excluded_from_payload_hash():
    plain = _spec()
    declared = _spec(validity={"theta_max": (4.0, 6.0)})
    # Conformance metadata must never invalidate cached results.
    assert plain.spec_hash() == declared.spec_hash()
    assert declared.validity_ranges == {"theta_max": [4.0, 6.0]}


def test_golden_excluded_from_payload_hash():
    plain = _spec()
    declared = _spec(golden={"hull_S_width_final": 0.5})
    assert plain.spec_hash() == declared.spec_hash()
    assert declared.golden_values == {"hull_S_width_final": 0.5}


def test_golden_pins_validated_at_construction():
    with pytest.raises(ValueError, match="finite"):
        _spec(golden={"x": float("nan")})
    with pytest.raises(ValueError, match="number"):
        _spec(golden={"x": "not-a-number"})
    with pytest.raises(ValueError, match="rtol"):
        _spec(golden={"x": (1.0, -1e-3)})


def test_check_golden_flags_missing_finding_and_deviation():
    conf = ScenarioConformance(_spec(golden={"no_such_finding": 1.0}))
    with pytest.raises(ConformanceViolation, match="no_such_finding"):
        conf.check_golden()
    conf = ScenarioConformance(
        _spec(golden={"hull_S_width_final": (99.0, 1e-6)})
    )
    with pytest.raises(ConformanceViolation, match="deviates"):
        conf.check_golden()


# ----------------------------------------------------------------------
# Harness mechanics
# ----------------------------------------------------------------------

def test_fraction_mapping_covers_state_box():
    conf = ScenarioConformance(get_scenario("autoscaler"))
    lower = conf.states_from_fracs(np.zeros((1, conf.model.dim)))[0]
    upper = conf.states_from_fracs(np.ones((1, conf.model.dim)))[0]
    np.testing.assert_allclose(lower, conf.model.state_lower)
    np.testing.assert_allclose(upper, conf.model.state_upper)


def test_theta_fraction_mapping_discrete_set():
    # No catalog model currently declares a finite Theta, so exercise
    # the member-selection branch on a stub: fractions must always map
    # onto admissible members, never interpolate between them.
    conf = ScenarioConformance.__new__(ScenarioConformance)
    conf.spec = get_scenario("gps-map")

    class _Stub:
        theta_set = DiscreteSet([[0.5, 1.0], [2.0, 3.0], [4.0, 0.5]])

    conf.model = _Stub()
    members = np.asarray(_Stub.theta_set.values)
    thetas = conf.thetas_from_fracs(
        np.linspace(0.0, 1.0, 7)[:, None] * np.ones((1, 2))
    )
    for row in thetas:
        assert any(np.allclose(row, m) for m in members)
    np.testing.assert_allclose(
        conf.thetas_from_fracs(np.zeros((1, 2)))[0], members[0]
    )
    np.testing.assert_allclose(
        conf.thetas_from_fracs(np.ones((1, 2)))[0], members[-1]
    )


def test_perturbed_kwargs_rejects_undeclared_key():
    conf = ScenarioConformance(get_scenario("autoscaler"))
    with pytest.raises(KeyError, match="not-a-range"):
        conf.perturbed_kwargs({"not-a-range": 0.5})


def test_perturbation_requires_validity_declaration():
    conf = ScenarioConformance(get_scenario("seir-transient"))
    with pytest.raises(ConformanceViolation, match="validity"):
        conf.check_perturbation()


def test_run_all_report_lists_every_check():
    report = ScenarioConformance(get_scenario("autoscaler")).run_all(
        ensemble=False
    )
    names = {o.name for o in report.outcomes}
    assert names == {"ordering", "batch-consistency", "ensemble",
                     "dtmc-conservative", "perturbation", "golden"}
    assert {o.status for o in report.outcomes} <= {
        "passed", "not-applicable"
    }
    assert "conformance: autoscaler" in report.render()


def test_violation_is_assertion_error():
    # pytest renders ConformanceViolation natively.
    assert issubclass(ConformanceViolation, AssertionError)
