"""Tests for robust design and convergence studies (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    birkhoff_inclusion_fraction,
    convergence_study,
    robust_minimize_scalar,
)
from repro.analysis.robust import worst_case_objective
from repro.models import make_sir_model
from repro.simulation import ConstantPolicy, simulate
from repro.steadystate import birkhoff_centre_2d


class TestRobustMinimizeScalar:
    def test_quadratic(self):
        result = robust_minimize_scalar(lambda x: (x - 2.0) ** 2, (0.0, 5.0))
        assert result.optimum == pytest.approx(2.0, abs=1e-2)
        assert result.value == pytest.approx(0.0, abs=1e-3)
        assert result.design_grid.shape == (9,)

    def test_boundary_minimum(self):
        result = robust_minimize_scalar(lambda x: x, (1.0, 3.0))
        assert result.optimum == pytest.approx(1.0, abs=1e-2)

    def test_convexity_check(self):
        convex = robust_minimize_scalar(lambda x: x * x, (-1.0, 1.0))
        assert convex.is_convex_on_grid()
        bumpy = robust_minimize_scalar(lambda x: np.sin(8 * x), (0.0, 3.0))
        assert not bumpy.is_convex_on_grid()

    def test_validation(self):
        with pytest.raises(ValueError):
            robust_minimize_scalar(lambda x: x, (2.0, 1.0))
        with pytest.raises(ValueError):
            robust_minimize_scalar(lambda x: x, (0.0, 1.0), coarse_points=2)

    def test_worst_case_objective_matches_extremal(self, sir_model, sir_x0):
        from repro.bounds import extremal_trajectory

        value = worst_case_objective(sir_model, sir_x0, 1.0, [0.0, 1.0],
                                     n_steps=120)
        direct = extremal_trajectory(sir_model, sir_x0, 1.0, [0.0, 1.0],
                                     n_steps=120)
        assert value == pytest.approx(direct.value, abs=1e-9)


@pytest.fixture(scope="module")
def sir_region():
    model = make_sir_model()
    return model, birkhoff_centre_2d(model, x0_guess=[0.7, 0.05])


class TestInclusionFraction:
    def test_stationary_run_mostly_inside(self, sir_region):
        model, region = sir_region
        pop = model.instantiate(1000, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 40.0,
                       rng=np.random.default_rng(5), n_samples=400)
        stats = birkhoff_inclusion_fraction(run, region, burn_in=15.0,
                                            epsilon=3.0 / np.sqrt(1000))
        assert stats.fraction_inside > 0.9
        assert stats.n_samples > 0
        assert stats.mean_distance <= stats.max_distance

    def test_ensemble_stats_match_pooled_runs(self, sir_region):
        """ensemble_inclusion_fraction pools all runs' stationary samples."""
        from repro.analysis import ensemble_inclusion_fraction
        from repro.simulation import batch_simulate

        model, region = sir_region
        pop = model.instantiate(500, [0.7, 0.3])
        batch = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 30.0,
                               n_runs=4, seed=9, n_samples=120)
        stats = ensemble_inclusion_fraction(batch, region, burn_in=12.0,
                                            epsilon=3.0 / np.sqrt(500))
        kept = int(np.count_nonzero(batch.times >= 12.0))
        assert stats.n_samples == 4 * kept
        assert stats.fraction_inside > 0.8
        with pytest.raises(ValueError):
            ensemble_inclusion_fraction(batch, region, projection=[0])

    def test_transient_excluded_by_burn_in(self, sir_region):
        model, region = sir_region
        # The initial state (0.7, 0.3) is far outside the Birkhoff region.
        pop = model.instantiate(300, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 15.0,
                       rng=np.random.default_rng(6), n_samples=150)
        with_transient = birkhoff_inclusion_fraction(run, region,
                                                     burn_in=0.0)
        without = birkhoff_inclusion_fraction(run, region, burn_in=6.0,
                                              epsilon=0.1)
        assert without.fraction_inside >= with_transient.fraction_inside

    def test_projection_validation(self, sir_region):
        model, region = sir_region
        pop = model.instantiate(100, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 1.0,
                       rng=np.random.default_rng(1), n_samples=10)
        with pytest.raises(ValueError):
            birkhoff_inclusion_fraction(run, region, projection=[0])

    def test_repr(self, sir_region):
        model, region = sir_region
        pop = model.instantiate(100, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 1.0,
                       rng=np.random.default_rng(1), n_samples=10)
        stats = birkhoff_inclusion_fraction(run, region)
        assert "inside" in repr(stats)


class TestConvergenceStudy:
    @pytest.mark.slow
    def test_fraction_improves_with_n(self, sir_region):
        model, region = sir_region
        study = convergence_study(
            model,
            region,
            policies={"const": lambda: ConstantPolicy([5.0])},
            sizes=(100, 2000),
            x0=[0.7, 0.3],
            t_final=50.0,
            burn_in=15.0,
            seed=3,
            n_samples=400,
        )
        fracs = study.fractions("const")
        assert len(fracs) == 2
        assert study.is_monotone_improving("const")
        assert fracs[-1] > 0.9
