"""Tests for batch simulation statistics and polygon clipping."""

import numpy as np
import pytest

from repro.geometry import (
    ConvexPolygon,
    clip_convex,
    intersection_area,
    overlap_metrics,
    polygon_area,
)
from repro.simulation import ConstantPolicy, batch_simulate

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestClipConvex:
    def test_self_intersection_identity(self):
        clipped = clip_convex(UNIT_SQUARE, UNIT_SQUARE)
        assert abs(abs(polygon_area(clipped)) - 1.0) < 1e-9

    def test_half_overlap(self):
        shifted = UNIT_SQUARE + np.array([0.5, 0.0])
        assert intersection_area(UNIT_SQUARE, shifted) == pytest.approx(0.5)

    def test_disjoint(self):
        far = UNIT_SQUARE + np.array([5.0, 0.0])
        assert intersection_area(UNIT_SQUARE, far) == 0.0

    def test_contained(self):
        small = 0.5 * UNIT_SQUARE + np.array([0.25, 0.25])
        assert intersection_area(UNIT_SQUARE, small) == pytest.approx(0.25)

    def test_triangle_corner(self):
        triangle = np.array([[0.5, 0.5], [2.0, 0.5], [2.0, 2.0]])
        assert intersection_area(UNIT_SQUARE, triangle) == pytest.approx(0.125)

    def test_symmetry(self):
        shifted = UNIT_SQUARE + np.array([0.3, 0.4])
        a = intersection_area(UNIT_SQUARE, shifted)
        b = intersection_area(shifted, UNIT_SQUARE)
        assert a == pytest.approx(b)

    def test_accepts_convex_polygon_objects(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        assert intersection_area(poly, poly) == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        assert clip_convex(UNIT_SQUARE[:2], UNIT_SQUARE).shape == (0, 2)

    def test_overlap_metrics(self):
        shifted = UNIT_SQUARE + np.array([0.5, 0.0])
        metrics = overlap_metrics(UNIT_SQUARE, shifted)
        assert metrics["intersection"] == pytest.approx(0.5)
        assert metrics["jaccard"] == pytest.approx(0.5 / 1.5)
        assert metrics["a_inside_b"] == pytest.approx(0.5)

    def test_overlap_metrics_identical(self):
        metrics = overlap_metrics(UNIT_SQUARE, UNIT_SQUARE)
        assert metrics["jaccard"] == pytest.approx(1.0)

    def test_random_containment_property(self, rng):
        # Intersection area never exceeds either operand's area.
        for _ in range(10):
            a = ConvexPolygon(rng.normal(size=(12, 2))).vertices
            b = ConvexPolygon(rng.normal(size=(12, 2))).vertices
            inter = intersection_area(a, b)
            assert inter <= abs(polygon_area(a)) + 1e-9
            assert inter <= abs(polygon_area(b)) + 1e-9


class TestBatchSimulate:
    def test_shapes(self, sir_model):
        pop = sir_model.instantiate(100, [0.7, 0.3])
        batch = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                               n_runs=5, seed=1, n_samples=20)
        assert batch.states.shape == (5, 20, 2)
        assert batch.n_runs == 5
        assert batch.dim == 2
        assert batch.mean().shape == (20, 2)
        assert batch.std().shape == (20, 2)

    def test_deterministic_given_seed(self, sir_model):
        pop = sir_model.instantiate(100, [0.7, 0.3])
        a = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                           n_runs=3, seed=7, n_samples=10)
        b = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                           n_runs=3, seed=7, n_samples=10)
        np.testing.assert_allclose(a.states, b.states)

    def test_runs_are_independent(self, sir_model):
        pop = sir_model.instantiate(200, [0.7, 0.3])
        batch = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                               n_runs=4, seed=0, n_samples=10)
        finals = batch.final_states()
        assert np.unique(finals, axis=0).shape[0] > 1

    def test_mean_tracks_mean_field(self, sir_model):
        from repro.ode import solve_ode

        pop = sir_model.instantiate(500, [0.7, 0.3])
        batch = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                               n_runs=30, seed=3, n_samples=11)
        ode = solve_ode(sir_model.vector_field([5.0]), [0.7, 0.3],
                        (0, 1), t_eval=batch.times)
        assert np.max(np.abs(batch.mean() - ode.states)) < 0.03

    def test_quantile_band_ordering(self, sir_model):
        pop = sir_model.instantiate(100, [0.7, 0.3])
        batch = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                               n_runs=10, seed=2, n_samples=10)
        lo, hi = batch.quantile_band(0.1, 0.9)
        assert np.all(lo <= hi + 1e-12)
        with pytest.raises(ValueError):
            batch.quantile_band(0.9, 0.1)

    def test_observable_and_fraction(self, sir_model):
        pop = sir_model.instantiate(100, [0.7, 0.3])
        batch = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                               n_runs=8, seed=4, n_samples=10)
        totals = batch.observable([1.0, 1.0])
        assert totals.shape == (8, 10)
        frac = batch.fraction_satisfying(lambda x: x[1] < 0.5)
        assert 0.0 <= frac <= 1.0

    def test_invalid_n_runs(self, sir_model):
        pop = sir_model.instantiate(10, [0.7, 0.3])
        with pytest.raises(ValueError, match="n_runs"):
            batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0, n_runs=0)

    def test_engine_selection(self, sir_model):
        pop = sir_model.instantiate(50, [0.7, 0.3])
        for engine in ("vectorized", "scalar"):
            batch = batch_simulate(pop, lambda: ConstantPolicy([5.0]), 0.5,
                                   n_runs=2, seed=0, n_samples=5,
                                   engine=engine)
            assert batch.states.shape == (2, 5, 2)
        with pytest.raises(ValueError, match="engine"):
            batch_simulate(pop, lambda: ConstantPolicy([5.0]), 0.5,
                           n_runs=2, engine="warp-drive")


class TestBatchSimulateValidation:
    """Up-front input validation: bad calls fail fast with specific
    errors, never as downstream crashes mid-ensemble (the historical
    failure mode was an opaque crash when the first replication died)."""

    def test_zero_runs_both_engines(self, sir_model):
        pop = sir_model.instantiate(10, [0.7, 0.3])
        for engine in ("vectorized", "scalar"):
            with pytest.raises(ValueError, match="n_runs must be positive"):
                batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                               n_runs=0, engine=engine)

    def test_non_integer_runs(self, sir_model):
        pop = sir_model.instantiate(10, [0.7, 0.3])
        with pytest.raises(TypeError, match="n_runs must be an integer"):
            batch_simulate(pop, lambda: ConstantPolicy([5.0]), 1.0,
                           n_runs=2.5)

    def test_non_callable_factory(self, sir_model):
        pop = sir_model.instantiate(10, [0.7, 0.3])
        with pytest.raises(TypeError, match="policy_factory"):
            batch_simulate(pop, ConstantPolicy([5.0]), 1.0, n_runs=2)

    def test_bad_horizon_rejected_before_running(self, sir_model):
        pop = sir_model.instantiate(10, [0.7, 0.3])
        calls = []

        def counting_factory():
            calls.append(1)
            return ConstantPolicy([5.0])

        with pytest.raises(ValueError, match="t_final"):
            batch_simulate(pop, counting_factory, 0.0, n_runs=2)
        assert not calls  # validation failed before any policy was built

    def test_failing_policy_scalar_reports_replication(self, sir_model):
        pop = sir_model.instantiate(10, [0.7, 0.3])

        class ExplodingPolicy(ConstantPolicy):
            def theta(self, t, x):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError,
                           match="replication 0.*boom") as err:
            batch_simulate(pop, lambda: ExplodingPolicy([5.0]), 1.0,
                           n_runs=3, engine="scalar")
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_failing_policy_vectorized_propagates(self, sir_model):
        pop = sir_model.instantiate(10, [0.7, 0.3])

        class ExplodingPolicy(ConstantPolicy):
            def theta(self, t, x):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            batch_simulate(pop, lambda: ExplodingPolicy([5.0]), 1.0,
                           n_runs=3, engine="vectorized")
