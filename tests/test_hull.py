"""Tests for the differential hull (repro.bounds.hull)."""

import numpy as np

from repro.bounds import differential_hull_bounds, uncertain_envelope
from repro.models import make_sir_model


class TestHullSoundness:
    def test_hull_contains_uncertain_envelope(self, sir_narrow):
        """The hull must enclose every constant-parameter solution."""
        t = np.linspace(0, 5, 21)
        hull = differential_hull_bounds(sir_narrow, [0.7, 0.3], t)
        env = uncertain_envelope(sir_narrow, [0.7, 0.3], t, resolution=9)
        assert np.all(hull.lower[:, 1] <= env.lower["I"] + 1e-6)
        assert np.all(hull.upper[:, 1] >= env.upper["I"] - 1e-6)
        assert np.all(hull.lower[:, 0] <= env.lower["S"] + 1e-6)
        assert np.all(hull.upper[:, 0] >= env.upper["S"] - 1e-6)

    def test_hull_contains_feedback_solutions(self, sir_narrow):
        """Time-varying selections also stay inside the hull."""
        from repro.inclusion import ParametricInclusion

        inc = ParametricInclusion(sir_narrow)
        t = np.linspace(0, 4, 17)
        hull = differential_hull_bounds(sir_narrow, [0.7, 0.3], t)
        selector = lambda s, x: [1.0 + (np.sin(7 * s) + 1.0) / 2.0]  # noqa: E731
        traj = inc.solve_feedback(selector, [0.7, 0.3], (0, 4))
        for k, tk in enumerate(t):
            state = traj(tk)
            assert np.all(hull.lower[k] - 1e-5 <= state)
            assert np.all(state <= hull.upper[k] + 1e-5)

    def test_initial_rectangle_degenerate(self, sir_narrow):
        hull = differential_hull_bounds(sir_narrow, [0.7, 0.3],
                                        np.linspace(0, 1, 5))
        np.testing.assert_allclose(hull.lower[0], [0.7, 0.3])
        np.testing.assert_allclose(hull.upper[0], [0.7, 0.3])

    def test_order_preserved(self, sir_narrow):
        hull = differential_hull_bounds(sir_narrow, [0.7, 0.3],
                                        np.linspace(0, 8, 33))
        assert np.all(hull.lower <= hull.upper + 1e-9)


class TestHullLooseness:
    """The paper's Figure 4: the hull degrades as theta_max grows."""

    def test_width_grows_with_theta_range(self):
        t = np.linspace(0, 10, 41)
        widths = []
        for theta_max in (2.0, 5.0):
            model = make_sir_model(theta_max=theta_max)
            hull = differential_hull_bounds(model, [0.7, 0.3], t)
            widths.append(float(hull.width(1)[-1]))
        assert widths[1] > 3.0 * widths[0]

    def test_trivial_for_theta_max_6(self):
        # Paper: "for theta_max = 6 the approximation is trivial for t >= 4".
        model = make_sir_model(theta_max=6.0)
        hull = differential_hull_bounds(model, [0.7, 0.3],
                                        np.linspace(0, 10, 41))
        assert hull.is_trivial(1)

    def test_blowup_padding_with_inf(self):
        model = make_sir_model(theta_max=10.0)
        hull = differential_hull_bounds(model, [0.7, 0.3],
                                        np.linspace(0, 10, 41),
                                        blowup_threshold=5.0)
        assert np.isinf(hull.upper[-1]).any()
        assert np.isneginf(hull.lower[-1]).any()
        # Early samples are still finite.
        assert np.isfinite(hull.upper[0]).all()


class TestHullHelpers:
    def test_clipped(self, sir_narrow):
        hull = differential_hull_bounds(sir_narrow, [0.7, 0.3],
                                        np.linspace(0, 10, 21))
        clipped = hull.clipped([0.0, 0.0], [1.0, 1.0])
        assert np.all(clipped.lower >= 0.0)
        assert np.all(clipped.upper <= 1.0)

    def test_observable_bounds_interval_arithmetic(self, sir_narrow):
        hull = differential_hull_bounds(sir_narrow, [0.7, 0.3],
                                        np.linspace(0, 3, 13))
        lo, hi = hull.observable_bounds([1.0, -1.0])  # S - I
        expected_lo = hull.lower[:, 0] - hull.upper[:, 1]
        expected_hi = hull.upper[:, 0] - hull.lower[:, 1]
        np.testing.assert_allclose(lo, expected_lo)
        np.testing.assert_allclose(hi, expected_hi)

    def test_observable_bounds_zero_weight_on_diverged_rows(self):
        """Regression: ``±inf · 0`` must not poison diverged rows with NaN.

        Any weight vector with a zero entry used to produce NaN bounds
        (and a RuntimeWarning) on every row past the hull blowup; the
        honest answer is ``(-inf, +inf)`` there.
        """
        import warnings

        from repro.bounds import HullBounds

        bounds = HullBounds(
            times=np.array([0.0, 1.0]),
            lower=np.array([[0.2, 0.1], [-np.inf, -np.inf]]),
            upper=np.array([[0.4, 0.3], [np.inf, np.inf]]),
            state_names=("S", "I"),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            lo, hi = bounds.observable_bounds([1.0, 0.0])
        np.testing.assert_allclose(lo[0], 0.2)
        np.testing.assert_allclose(hi[0], 0.4)
        assert lo[1] == -np.inf and hi[1] == np.inf

    def test_observable_bounds_after_blowup_end_to_end(self):
        """The confirmed repro: coordinate observables of a diverged hull."""
        model = make_sir_model(theta_max=10.0)
        hull = differential_hull_bounds(model, [0.7, 0.3],
                                        np.linspace(0, 10, 41),
                                        blowup_threshold=5.0)
        for weights in ([1.0, 0.0], [0.0, 1.0]):
            lo, hi = hull.observable_bounds(weights)
            assert not np.isnan(lo).any()
            assert not np.isnan(hi).any()
            assert lo[-1] == -np.inf and hi[-1] == np.inf

    def test_width_helper(self, sir_narrow):
        hull = differential_hull_bounds(sir_narrow, [0.7, 0.3],
                                        np.linspace(0, 2, 9))
        assert np.all(hull.width(0) >= -1e-12)

    def test_gps_four_dimensional_hull(self, gps_map):
        from repro.models import gps_initial_state_map

        hull = differential_hull_bounds(
            gps_map, gps_initial_state_map(), np.linspace(0, 2, 9),
        )
        assert hull.lower.shape == (9, 4)
        assert np.all(hull.lower <= hull.upper + 1e-9)

    def test_refine_never_tightens(self, sir_narrow):
        """L-BFGS-B polish can only widen (more thorough extremisation)."""
        t = np.linspace(0, 3, 7)
        plain = differential_hull_bounds(sir_narrow, [0.7, 0.3], t)
        refined = differential_hull_bounds(sir_narrow, [0.7, 0.3], t,
                                           refine=True)
        assert np.all(refined.lower <= plain.lower + 1e-6)
        assert np.all(refined.upper >= plain.upper - 1e-6)

    def test_corner_exactness_for_monotone_rates(self, sir_narrow):
        """Extra slice samples change nothing for monotone-rate models."""
        t = np.linspace(0, 3, 7)
        corners = differential_hull_bounds(sir_narrow, [0.7, 0.3], t,
                                           x_samples_per_axis=2)
        sampled = differential_hull_bounds(sir_narrow, [0.7, 0.3], t,
                                           x_samples_per_axis=5)
        np.testing.assert_allclose(corners.lower, sampled.lower, atol=1e-7)
        np.testing.assert_allclose(corners.upper, sampled.upper, atol=1e-7)
