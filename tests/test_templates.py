"""Tests for template polytopes and the asymptotic reachable hull."""

import numpy as np
import pytest

from repro.bounds import (
    TemplatePolytope,
    box_directions,
    octagon_directions,
    template_reachable_bounds,
)
from repro.steadystate import asymptotic_reachable_hull, birkhoff_centre_2d


class TestDirectionFamilies:
    def test_box_directions_count(self):
        assert box_directions(3).shape == (6, 3)

    def test_box_directions_invalid(self):
        with pytest.raises(ValueError):
            box_directions(0)

    def test_octagon_directions_count(self):
        # 2d + 4 * C(d, 2): d=2 -> 4 + 4 = 8; d=4 -> 8 + 24 = 32.
        assert octagon_directions(2).shape == (8, 2)
        assert octagon_directions(4).shape == (32, 4)

    def test_octagon_includes_box(self):
        octo = octagon_directions(2)
        box = box_directions(2)
        for row in box:
            assert np.any(np.all(np.isclose(octo, row), axis=1))


class TestTemplatePolytope:
    def unit_box(self):
        return TemplatePolytope(box_directions(2), np.ones(4))

    def test_contains_and_margin(self):
        poly = self.unit_box()
        assert poly.contains([0.0, 0.0])
        assert poly.contains([1.0, 1.0])
        assert not poly.contains([1.5, 0.0])
        assert poly.margin([0.0, 0.0]) == pytest.approx(-1.0)
        assert poly.margin([2.0, 0.0]) == pytest.approx(1.0)

    def test_support_lookup(self):
        poly = self.unit_box()
        assert poly.support([1.0, 0.0]) == pytest.approx(1.0)
        with pytest.raises(KeyError):
            poly.support([0.5, 0.5])

    def test_bounding_box(self):
        poly = self.unit_box()
        lower, upper = poly.bounding_box()
        np.testing.assert_allclose(lower, [-1.0, -1.0])
        np.testing.assert_allclose(upper, [1.0, 1.0])

    def test_bounding_box_missing_directions(self):
        poly = TemplatePolytope(np.array([[1.0, 0.0]]), np.array([1.0]))
        assert poly.bounding_box() is None

    def test_support_duplicate_direction_reports_tightest(self):
        """Regression: ``intersect`` stacks duplicate directions, and
        ``support`` used to return the *first* matching row's offset —
        the loosest halfspace (offsets 5.0 then 2.0 returned 5.0)."""
        loose = TemplatePolytope(np.array([[1.0, 0.0]]), np.array([5.0]))
        tight = TemplatePolytope(np.array([[1.0, 0.0]]), np.array([2.0]))
        assert loose.intersect(tight).support([1.0, 0.0]) == pytest.approx(2.0)
        assert tight.intersect(loose).support([1.0, 0.0]) == pytest.approx(2.0)

    def test_bounding_box_inherits_tightest_offsets(self):
        """``bounding_box`` reads supports, so it must see the min too."""
        wide = self.unit_box()
        narrow = TemplatePolytope(
            np.vstack([np.eye(2), -np.eye(2)]),
            np.array([0.5, 0.25, 0.75, 1.0]),
        )
        lower, upper = wide.intersect(narrow).bounding_box()
        np.testing.assert_allclose(upper, [0.5, 0.25])
        np.testing.assert_allclose(lower, [-0.75, -1.0])

    def test_intersect_stacks(self):
        a = self.unit_box()
        b = TemplatePolytope(np.array([[1.0, 1.0]]), np.array([0.5]))
        both = a.intersect(b)
        assert both.n_halfspaces == 5
        assert both.contains([0.2, 0.2])
        assert not both.contains([0.9, 0.9])

    def test_validation(self):
        with pytest.raises(ValueError):
            TemplatePolytope(np.ones((2, 2)), np.ones(3))


class TestTemplateReachableBounds:
    def test_contains_uncertain_endpoints_sir(self, sir_model, sir_x0):
        from repro.ode import solve_ode

        horizon = 1.0
        poly = template_reachable_bounds(sir_model, sir_x0, horizon,
                                         n_steps=120)
        for theta in (1.0, 5.5, 10.0):
            traj = solve_ode(sir_model.vector_field([theta]), sir_x0,
                             (0, horizon))
            assert poly.contains(traj.final_state, tol=1e-4)

    def test_box_template_matches_transient_bounds(self, sir_model, sir_x0):
        from repro.bounds import pontryagin_transient_bounds

        horizon = 1.0
        poly = template_reachable_bounds(sir_model, sir_x0, horizon,
                                         directions=box_directions(2),
                                         n_steps=120)
        lower, upper = poly.bounding_box()
        tb = pontryagin_transient_bounds(sir_model, sir_x0, [horizon],
                                         observables=["S", "I"],
                                         steps_per_unit=120)
        assert upper[1] == pytest.approx(tb.upper["I"][0], abs=1e-6)
        assert lower[1] == pytest.approx(tb.lower["I"][0], abs=1e-6)

    @pytest.mark.slow
    def test_four_dimensional_gps_map(self, gps_map):
        from repro.models import gps_initial_state_map

        poly = template_reachable_bounds(
            gps_map, gps_initial_state_map(), 2.0,
            directions=box_directions(4), n_steps=100,
        )
        lower, upper = poly.bounding_box()
        assert np.all(lower <= upper)
        # Queue fractions stay within the class budgets [0, 0.5].
        assert np.all(lower >= -1e-3)
        assert np.all(upper <= 0.5 + 1e-3)

    def test_direction_shape_validated(self, sir_model, sir_x0):
        with pytest.raises(ValueError):
            template_reachable_bounds(sir_model, sir_x0, 1.0,
                                      directions=np.ones((3, 5)))


class TestAsymptoticHull:
    @pytest.mark.slow
    def test_contains_birkhoff_centre(self, sir_model):
        region = birkhoff_centre_2d(sir_model, x0_guess=[0.7, 0.05])
        hull = asymptotic_reachable_hull(
            sir_model, [0.7, 0.3],
            horizons=np.array([5.0, 10.0, 20.0]),
            directions=octagon_directions(2),
            n_steps_per_unit=40,
        )
        for vertex in region.polygon.vertices:
            assert hull.contains(vertex, tol=1e-2)

    def test_horizon_validation(self, sir_model):
        with pytest.raises(ValueError):
            asymptotic_reachable_hull(sir_model, [0.7, 0.3],
                                      horizons=np.array([5.0]))
        with pytest.raises(ValueError):
            asymptotic_reachable_hull(sir_model, [0.7, 0.3],
                                      horizons=np.array([5.0, 4.0]))
