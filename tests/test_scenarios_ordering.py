"""Bound-ordering invariants across the whole scenario catalog.

For every registered scenario's model the three transient bound families
must nest (soundness of each method, Section IV of the paper):

    uncertain envelope  ⊆  template box (exact imprecise bounds)
                        ⊆  differential hull,

checked per state coordinate at a sampled horizon on deliberately coarse
grids — this is a structural ordering, not an accuracy test, so it must
hold for *every* model anyone registers, including the extension
catalog (gossip, repairable queue, CDN cache).

Tolerances: the template box is computed by fixed-step Pontryagin
sweeps, so its bounds carry O(dt) discretisation error and can sit
slightly *inside* the true reachable extremes; the envelope solves the
same ODEs adaptively.  A small absolute slack absorbs that without
masking real ordering violations (which show up at the 1e-1 scale when
a sign or side is wrong).
"""

import numpy as np
import pytest

from repro.bounds import (
    box_directions,
    differential_hull_bounds,
    template_reachable_bounds,
    uncertain_envelope,
)
from repro.scenarios import list_scenarios

#: Slack for envelope-vs-template (Pontryagin time discretisation).
TEMPLATE_TOL = 5e-3
#: Slack for template-vs-hull (both sound; hull integrates adaptively).
HULL_TOL = 1e-6


def _unique_model_cases():
    """One case per distinct (factory, kwargs, x0) in the catalog."""
    seen = {}
    for spec in list_scenarios():
        key = (spec.factory_ref, str(sorted(spec.kwargs.items())), spec.x0)
        if key not in seen:
            seen[key] = spec
    return [pytest.param(spec, id=spec.name) for spec in seen.values()]


def _envelope_integrator_opts(spec):
    """Honour a scenario's declared envelope integrator (e.g. the bike
    model needs fixed-step RK4 on its sliding boundary)."""
    for q in spec.questions:
        if q.kind == "envelope":
            opts = q.opts
            return {k: opts[k] for k in ("integrator", "rk4_steps")
                    if k in opts}
    return {}


@pytest.mark.parametrize("spec", _unique_model_cases())
def test_envelope_inside_template_inside_hull(spec):
    model = spec.build_model()
    horizon = min(spec.horizon, 1.0)
    x0 = np.asarray(spec.x0)

    coords = [(f"x{i}", np.eye(model.dim)[i]) for i in range(model.dim)]
    env = uncertain_envelope(
        model, x0, np.array([0.0, horizon]), resolution=3,
        observables=coords, **_envelope_integrator_opts(spec),
    )
    polytope = template_reachable_bounds(
        model, x0, horizon, directions=box_directions(model.dim),
        n_steps=60, max_iter=60,
    )
    box_lower, box_upper = polytope.bounding_box()
    hull = differential_hull_bounds(
        model, x0, np.array([0.0, 0.5 * horizon, horizon])
    )

    for i in range(model.dim):
        env_lo = env.lower[f"x{i}"][-1]
        env_hi = env.upper[f"x{i}"][-1]
        # Constant parameters are admissible signals: the envelope sits
        # inside the exact imprecise (template) bounds.
        assert box_lower[i] <= env_lo + TEMPLATE_TOL, (
            f"{spec.name}: coord {i} envelope lower {env_lo:.6g} escapes "
            f"template lower {box_lower[i]:.6g}"
        )
        assert env_hi <= box_upper[i] + TEMPLATE_TOL, (
            f"{spec.name}: coord {i} envelope upper {env_hi:.6g} escapes "
            f"template upper {box_upper[i]:.6g}"
        )
        # The hull over-approximates the exact reachable box.
        assert hull.lower[-1, i] <= box_lower[i] + HULL_TOL, (
            f"{spec.name}: coord {i} template lower {box_lower[i]:.6g} "
            f"escapes hull lower {hull.lower[-1, i]:.6g}"
        )
        assert box_upper[i] <= hull.upper[-1, i] + HULL_TOL, (
            f"{spec.name}: coord {i} template upper {box_upper[i]:.6g} "
            f"escapes hull upper {hull.upper[-1, i]:.6g}"
        )
        # And the bounds themselves are ordered.
        assert env_lo <= env_hi + 1e-12
        assert box_lower[i] <= box_upper[i] + TEMPLATE_TOL
