"""Bound-ordering invariants across the whole scenario catalog.

For every registered scenario's model the three transient bound families
must nest (soundness of each method, Section IV of the paper):

    uncertain envelope  ⊆  template box (exact imprecise bounds)
                        ⊆  differential hull.

The check itself — grids, tolerances and their rationale — lives in
:meth:`repro.testing.ScenarioConformance.check_ordering`; this file is
only the pytest parametrization over the registry, so any newly
registered scenario inherits the invariant with zero test code.
"""

import pytest

from repro.testing import ScenarioConformance, unique_model_cases


@pytest.mark.parametrize(
    "spec",
    [pytest.param(s, id=s.name) for s in unique_model_cases()],
)
def test_envelope_inside_template_inside_hull(spec):
    ScenarioConformance(spec).check_ordering()
