"""Chaos suite for the resilience layer (repro.resilience).

Every recovery path the tentpole added is *proved* here by injecting
deterministic faults (:mod:`repro.resilience.faults`) and asserting the
exact degraded behaviour:

- robust shard execution: retries with the pinned backoff schedule,
  per-shard timeouts reclaiming hung workers, pool-death recovery with
  quarantine blame, typed :class:`ShardFailure` slots under
  ``on_error="partial"``, serial fallback when pools are unavailable;
- per-question isolation in :func:`repro.scenarios.run_scenario`:
  survivors merge, failures carry a taxonomy, partial results are never
  cached, the CLI maps completeness to exit codes;
- numerical degradation: per-lane retirement in ``dopri_batch`` and
  deadline-bounded Pontryagin sweeps returning best-so-far bounds;
- the cache's transient-store retry and corrupt-entry tolerance;
- the no-fault guarantees: robust results bit-identical to the legacy
  path, and disarmed fault seams at provably zero marginal cost.

Numerical caveat pinned here once: after a lane retires mid-run, the
*surviving* lanes may differ from an all-healthy run by ~1 ULP because
BLAS reduction order depends on the active-stack shape.  Surviving-lane
comparisons under faults therefore use ``allclose(rtol=1e-14)``; exact
``array_equal`` is reserved for no-fault flag-on/flag-off comparisons.
"""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.engine import map_shards, sweep_constant_ensembles
from repro.models import make_sir_model
from repro.ode.batch import dopri_batch
from repro.bounds.pontryagin import pontryagin_transient_bounds
from repro.resilience import (
    FAILURE_KINDS,
    QuestionFailure,
    RetryPolicy,
    ShardFailure,
    faults,
    map_shards_robust,
)
from repro.resilience import execution
from repro.scenarios import (
    Question,
    cache_path,
    clear_cache,
    get_scenario,
    run_scenario,
)
from repro.scenarios.cache import load_cached_detail, store_result
from repro.scenarios.registry import _REGISTRY, register_scenario
from repro.__main__ import main as cli_main


def _double(x):
    return 2 * x


@pytest.fixture
def telemetry_on():
    telemetry.enable()
    telemetry.clear()
    yield
    telemetry.clear()
    telemetry.disable()


@pytest.fixture
def fresh_faults():
    faults.reset_stats()
    yield
    faults.reset_stats()


def _counters():
    return telemetry.snapshot()["counters"]


# ----------------------------------------------------------------------
# RetryPolicy: validation and the deterministic backoff schedule
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(on_error="explode")
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_rebuilds=0)

    def test_backoff_schedule_is_pure_and_capped(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.05,
                             backoff_factor=2.0, backoff_max=0.15)
        assert policy.backoff_schedule() == (0.05, 0.1, 0.15, 0.15)
        assert policy.backoff_delay(1) == 0.05
        with pytest.raises(ValueError):
            policy.backoff_delay(0)

    def test_failure_records(self):
        with pytest.raises(ValueError):
            ShardFailure(index=0, error_type="X", message="m",
                         kind="meteor", attempts=1, elapsed_seconds=0.0)
        f = ShardFailure(index=3, error_type="ValueError", message="bad",
                         kind="timeout", attempts=2, elapsed_seconds=1.25)
        assert "shard 3" in f.describe() and "timeout" in f.describe()
        q = QuestionFailure(scenario="s", kind="envelope", label="a",
                            error_type="ValueError", message="bad",
                            attempts=1, elapsed_seconds=0.1)
        assert q.question == "envelope[a]"
        assert "envelope[a]" in q.describe()
        assert set(FAILURE_KINDS) == {"error", "timeout", "pool-crash"}


# ----------------------------------------------------------------------
# Fault plans: determinism, arming, zero disarmed cost
# ----------------------------------------------------------------------

class TestFaultPlans:
    def test_spec_normalisation_and_precedence(self):
        with faults.inject(crash_shard={2: 1, 7: -1}, hang_shard=(2, 3),
                           kill_shard=2) as plan:
            # kill > hang > crash for a shard named in several lists.
            assert plan.shard_fault(2, 1) == "kill"
            assert plan.shard_fault(7, 99) == "crash"
            assert plan.shard_fault(5, 1) is None
            # Attempt-bounded entries stop faulting past their count.
            assert plan.shard_fault(7, 1) == "crash"
        with faults.inject(crash_shard={3: 1}) as plan:
            assert plan.shard_fault(3, 1) == "crash"
            assert plan.shard_fault(3, 2) is None
        with pytest.raises(TypeError):
            faults.inject(crash_shard="nope").__enter__()

    def test_disarmed_is_one_global_load(self, fresh_faults):
        assert not faults.armed()
        assert faults.active_plan() is None
        # Disarmed seam checks are not even tallied: the accounting
        # itself lives behind the armed branch.
        assert faults.stats()["seam_checks"] == 0
        assert faults.stats()["injected"] == 0

    def test_armed_seam_tally(self, fresh_faults):
        with faults.inject(corrupt_cache=True):
            assert faults.armed()
            faults.active_plan()
            faults.active_plan()
        assert not faults.armed()
        assert faults.stats()["seam_checks"] == 2

    def test_kill_degrades_to_crash_without_parent(self, fresh_faults):
        # In the test process itself (no multiprocessing parent) a kill
        # fault must not os._exit the interpreter.
        plan = faults.FaultPlan(kill_shards=((0, -1),))
        with pytest.raises(faults.InjectedFault):
            faults.apply_shard_fault(plan, 0, 1)
        assert faults.stats()["injected.kill"] == 1


# ----------------------------------------------------------------------
# Robust shard execution: serial path
# ----------------------------------------------------------------------

class TestSerialRobust:
    def test_no_fault_is_bit_identical_to_legacy(self):
        payloads = list(range(8))
        legacy = map_shards(_double, payloads)
        robust = map_shards(_double, payloads, policy=RetryPolicy())
        assert legacy == robust == [2 * p for p in payloads]

    def test_crash_once_is_retried_to_success(self, fresh_faults):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0)
        with faults.inject(crash_shard={1: 1}):
            out = map_shards(_double, [0, 1, 2], policy=policy)
        assert out == [0, 2, 4]
        assert faults.stats()["injected.crash"] == 1

    def test_exhausted_shard_becomes_typed_failure(self, fresh_faults):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0,
                             on_error="partial")
        with faults.inject(crash_shard=1):
            out = map_shards(_double, [0, 1, 2], policy=policy)
        assert out[0] == 0 and out[2] == 4
        failure = out[1]
        assert isinstance(failure, ShardFailure)
        assert failure.index == 1
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert failure.error_type == "InjectedFault"

    def test_on_error_raise_propagates_final_error(self, fresh_faults):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0,
                             on_error="raise")
        with faults.inject(crash_shard=1):
            with pytest.raises(faults.InjectedFault):
                map_shards(_double, [0, 1, 2], policy=policy)

    def test_backoff_schedule_hits_the_sleep_seam(self, fresh_faults,
                                                  monkeypatch):
        slept = []
        monkeypatch.setattr(execution, "_sleep", slept.append)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.05,
                             backoff_factor=2.0, backoff_max=2.0,
                             on_error="partial")
        with faults.inject(crash_shard=0):
            map_shards(_double, [0], policy=policy)
        # One delay per retry, following the pinned schedule exactly.
        assert slept == [0.05, 0.1]

    def test_resilience_counters_stamped(self, fresh_faults, telemetry_on):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0,
                             on_error="partial")
        with faults.inject(crash_shard=1):
            map_shards(_double, [0, 1, 2], policy=policy)
        counters = _counters()
        assert counters["resilience.shard.errors"] == 2
        assert counters["resilience.shard.retries"] == 1
        assert counters["resilience.shard.failures"] == 1


# ----------------------------------------------------------------------
# Robust shard execution: pool path
# ----------------------------------------------------------------------

class TestPoolRobust:
    def test_acceptance_one_crashed_one_hung_of_sixteen(self, fresh_faults):
        # The ISSUE's acceptance scenario: a 16-shard sweep with one
        # shard crashing once (recovers on retry) and one hanging on
        # every attempt (exhausts its timeout budget) yields 15 real
        # results and exactly one typed failure, in input order.
        payloads = list(range(16))
        policy = RetryPolicy(max_attempts=2, timeout_seconds=0.4,
                             backoff_base=0.0, on_error="partial")
        with faults.inject(crash_shard={11: 1}, hang_shard=5,
                           hang_seconds=30.0):
            out = map_shards(_double, payloads, processes=4, policy=policy)
        assert len(out) == 16
        for i in range(16):
            if i == 5:
                continue
            assert out[i] == 2 * i
        failure = out[5]
        assert isinstance(failure, ShardFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 2

    def test_killed_worker_recovers_via_rebuild(self, fresh_faults,
                                                telemetry_on):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0,
                             on_error="partial")
        with faults.inject(kill_shard={2: 1}):
            out = map_shards_robust(_double, list(range(6)), processes=2,
                                    policy=policy)
        assert out == [2 * p for p in range(6)]
        counters = _counters()
        assert counters["resilience.shard.pool_crashes"] >= 1
        assert counters["resilience.shard.pool_rebuilds"] >= 1

    def test_perma_killed_shard_blamed_in_quarantine(self, fresh_faults):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0,
                             on_error="partial")
        with faults.inject(kill_shard=3):
            out = map_shards_robust(_double, list(range(6)), processes=2,
                                    policy=policy)
        failure = out[3]
        assert isinstance(failure, ShardFailure)
        assert failure.kind == "pool-crash"
        for i in (0, 1, 2, 4, 5):
            assert out[i] == 2 * i

    def test_worker_count_invariance_under_faults(self, fresh_faults):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0,
                             on_error="partial")
        outs = []
        for processes in (None, 3):
            with faults.inject(crash_shard={0: 1, 4: -1}):
                outs.append(map_shards(_double, list(range(6)),
                                       processes=processes, policy=policy))
        serial, pooled = outs
        for i in range(6):
            if i == 4:
                continue
            assert serial[i] == pooled[i] == 2 * i
        # The failure records agree on everything deterministic.
        assert serial[4].kind == pooled[4].kind == "error"
        assert serial[4].attempts == pooled[4].attempts == 2
        assert serial[4].error_type == pooled[4].error_type

    def test_pool_unavailable_degrades_to_serial(self, monkeypatch):
        def broken_executor(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(execution, "ProcessPoolExecutor",
                            broken_executor)
        monkeypatch.setattr(execution, "_pool_warned", False)
        with pytest.warns(RuntimeWarning, match="running shards serially"):
            out = map_shards_robust(_double, list(range(4)), processes=4,
                                    policy=RetryPolicy())
        assert out == [0, 2, 4, 6]
        # The warning fires once per process; later sweeps stay quiet.
        out = map_shards_robust(_double, list(range(4)), processes=4,
                                policy=RetryPolicy())
        assert out == [0, 2, 4, 6]

    def test_legacy_pool_creation_failure_also_degrades(self, monkeypatch):
        import repro.engine.sharding as sharding

        def broken_pool(*args, **kwargs):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(sharding.multiprocessing, "Pool", broken_pool)
        monkeypatch.setattr(execution, "_pool_warned", False)
        with pytest.warns(RuntimeWarning, match="running shards serially"):
            out = map_shards(_double, list(range(4)), processes=4)
        assert out == [0, 2, 4, 6]


# ----------------------------------------------------------------------
# Sweep integration: the engine front door forwards the policy
# ----------------------------------------------------------------------

class TestSweepPolicy:
    def test_sweep_partial_marks_failed_grid_point(self, fresh_faults):
        policy = RetryPolicy(max_attempts=1, on_error="partial")
        with faults.inject(crash_shard=1):
            results = sweep_constant_ensembles(
                make_sir_model, [0.7, 0.3], 60, [2.0, 4.0, 6.0],
                t_final=0.5, n_runs=2, seed=7, n_samples=5,
                policy=policy,
            )
        assert isinstance(results[1], ShardFailure)
        for i in (0, 2):
            assert not isinstance(results[i], ShardFailure)
            assert results[i].states.shape[0] == 2


# ----------------------------------------------------------------------
# Scenario runner: per-question isolation
# ----------------------------------------------------------------------

def _partial_spec(name):
    base = get_scenario("sir-transient")
    return base.with_overrides(
        name=name,
        questions=[
            Question("envelope", options={"n_times": 4}),
            Question("envelope", options={"n_times": 6}, label="fine"),
            Question("template", options={"family": "bogus"}, label="bad"),
        ],
    )


class TestQuestionIsolation:
    def test_acceptance_partial_run_isolates_and_never_caches(
            self, tmp_path, telemetry_on):
        # The ISSUE's second acceptance scenario: 3 questions, one
        # raising backend -> two merged outcomes, a failure taxonomy,
        # and nothing written to the cache.
        spec = _partial_spec("resilience-partial")
        run = run_scenario(spec, cache_dir=tmp_path, on_error="partial")

        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.question == "template[bad]"
        assert failure.error_type == "ValueError"

        # Both envelope questions merged their series/findings.
        assert any(k.startswith("fine_") for k in run.result.series)
        assert "I_uncertain_max_final" in run.result.findings

        # Taxonomy + flags everywhere a partial result can be seen.
        assert run.report.questions_failed == 1
        assert run.report.metrics["scenarios.questions.failed"] == 1
        assert run.report.metrics[
            "resilience.question_failure.ValueError"] == 1
        assert run.result.parameters["partial"] is True
        assert any("template[bad]" in n for n in run.result.notes)
        assert "failed=1" in run.report.render()
        assert _counters()["resilience.question_failures"] == 1

        # Partial results are never cached: the next run must get the
        # chance to compute the missing question.
        assert not cache_path(spec, tmp_path).exists()
        rerun = run_scenario(spec, cache_dir=tmp_path, on_error="partial")
        assert rerun.report.metrics["scenarios.cache.hits"] == 0

    def test_on_error_raise_keeps_legacy_semantics(self, tmp_path):
        spec = _partial_spec("resilience-raise")
        with pytest.raises(ValueError, match="bogus"):
            run_scenario(spec, cache_dir=tmp_path)
        assert not cache_path(spec, tmp_path).exists()

    def test_question_retry_policy(self, tmp_path, monkeypatch):
        # The serial robust loop replays a question exactly
        # retry.max_attempts times with the policy's backoff.
        slept = []
        monkeypatch.setattr(execution, "_sleep", slept.append)
        spec = _partial_spec("resilience-retried")
        retry = RetryPolicy(max_attempts=3, backoff_base=0.01,
                            backoff_factor=2.0)
        run = run_scenario(spec, cache_dir=tmp_path, use_cache=False,
                           on_error="partial", retry=retry)
        assert len(run.failures) == 1
        assert run.failures[0].attempts == 3
        assert slept == [0.01, 0.02]

    def test_parallel_partial_run(self, tmp_path):
        spec = _partial_spec("resilience-parallel")
        run = run_scenario(spec, cache_dir=tmp_path, use_cache=False,
                           processes=2, on_error="partial")
        assert len(run.failures) == 1
        assert run.failures[0].question == "template[bad]"
        assert "I_uncertain_max_final" in run.result.findings

    def test_robust_healthy_run_matches_legacy(self, tmp_path):
        base = get_scenario("sir-transient")
        spec = base.with_overrides(
            name="resilience-healthy",
            questions=[Question("envelope", options={"n_times": 4})],
        )
        legacy = run_scenario(spec, use_cache=False)
        robust = run_scenario(spec, use_cache=False, on_error="partial",
                              retry=RetryPolicy(max_attempts=2))
        assert robust.failures == []
        assert legacy.result.findings == robust.result.findings
        for name, series in legacy.result.series.items():
            twin = robust.result.series[name]
            assert np.array_equal(series.times, twin.times)
            assert np.array_equal(series.values, twin.values)


# ----------------------------------------------------------------------
# CLI: exit codes for partial/total failure
# ----------------------------------------------------------------------

class TestCliOnError:
    def _register(self, spec):
        register_scenario(spec)
        return spec.name

    def test_exit_codes(self, tmp_path):
        base = get_scenario("sir-transient")
        healthy = base.with_overrides(
            name="cli-resilience-healthy",
            questions=[Question("envelope", options={"n_times": 4})],
        )
        partial = _partial_spec("cli-resilience-partial")
        doomed = base.with_overrides(
            name="cli-resilience-doomed",
            questions=[Question("template", options={"family": "bogus"})],
        )
        names = [self._register(s) for s in (healthy, partial, doomed)]
        try:
            args = ["--cache-dir", str(tmp_path), "--no-cache",
                    "--on-error", "partial"]
            assert cli_main(["run", names[0], *args]) == 0
            assert cli_main(["run", names[1], *args]) == 3
            assert cli_main(["run", names[2], *args]) == 4
            with pytest.raises(ValueError):
                cli_main(["run", names[1], "--cache-dir", str(tmp_path),
                          "--no-cache"])
        finally:
            for name in names:
                _REGISTRY.pop(name, None)


# ----------------------------------------------------------------------
# ODE core: per-lane retirement
# ----------------------------------------------------------------------

class TestLaneRetirement:
    def _solve(self, retire, telemetry_expected=False):
        f = lambda t, X: -X
        x0 = np.ones((3, 2))
        t_eval = np.linspace(0.0, 2.0, 9)
        return dopri_batch(f, x0, (0.0, 2.0), t_eval=t_eval,
                           rtol=1e-10, atol=1e-12,
                           retire_failed_lanes=retire)

    def test_no_fault_flag_is_bit_identical(self):
        off = self._solve(retire=False)
        on = self._solve(retire=True)
        assert np.array_equal(off.states, on.states)
        assert np.array_equal(off.times, on.times)
        assert on.stats["lane_failures"] == []

    def test_poisoned_lane_retires_survivors_continue(self, fresh_faults,
                                                      telemetry_on):
        healthy = self._solve(retire=True)
        with faults.inject(poison_nan=(1, 3)):
            sol = self._solve(retire=True)
        records = sol.stats["lane_failures"]
        assert len(records) == 1
        assert records[0]["lane"] == 1
        assert records[0]["reason"] == "non-finite-state"
        assert records[0]["accepted"] >= 3
        # Survivors match the all-healthy run up to BLAS reduction-order
        # noise (~1 ULP; see module docstring).
        for lane in (0, 2):
            assert np.allclose(sol.states[lane], healthy.states[lane],
                               rtol=1e-14, atol=0)
        # Survivors stay finite end to end.  (The poisoned lane's tail
        # holds its frozen state, which the injection itself made NaN —
        # a genuine non-finite *step* would freeze the last accepted
        # finite state instead.)
        assert np.isfinite(sol.states[[0, 2]]).all()
        assert _counters()["resilience.ode.lane_failures"] == 1

    def test_without_flag_poison_still_raises(self, fresh_faults):
        # A NaN state surfaces either as the non-finite guard or as a
        # step-size collapse, depending on where the controller trips
        # first — both abort loudly without the opt-in flag.
        with faults.inject(poison_nan=(1, 3)):
            with pytest.raises(RuntimeError,
                               match="non-finite|step size collapsed"):
                self._solve(retire=False)


# ----------------------------------------------------------------------
# Pontryagin: deadline-bounded sweeps
# ----------------------------------------------------------------------

class TestPontryaginDeadline:
    def test_deadline_returns_best_so_far(self, telemetry_on):
        model = make_sir_model()
        x0 = np.array([0.7, 0.3])
        horizons = np.array([0.5, 1.0])
        # Lanes path: the batch sweep stops iterating, keeps its
        # best-so-far trajectories and reports non-convergence.
        tight = pontryagin_transient_bounds(
            model, x0, horizons, observables=["I"], deadline_seconds=1e-9)
        assert tight.converged is False
        assert np.isfinite(tight.lower["I"]).all()
        # Scalar path: horizons never started stay NaN, nothing raises.
        scalar = pontryagin_transient_bounds(
            model, x0, horizons, observables=["I"], lanes=False,
            deadline_seconds=1e-9)
        assert scalar.converged is False
        assert np.isnan(scalar.lower["I"]).any()
        assert _counters()["resilience.pontryagin.deadline_hits"] >= 2

    def test_generous_deadline_matches_unbounded(self):
        model = make_sir_model()
        x0 = np.array([0.7, 0.3])
        horizons = np.array([0.5, 1.0])
        free = pontryagin_transient_bounds(model, x0, horizons,
                                           observables=["I"])
        assert free.converged is True
        bounded = pontryagin_transient_bounds(
            model, x0, horizons, observables=["I"], deadline_seconds=120.0)
        assert bounded.converged is True
        assert np.array_equal(free.lower["I"], bounded.lower["I"])
        assert np.array_equal(free.upper["I"], bounded.upper["I"])


# ----------------------------------------------------------------------
# Cache: transient store retry, corruption tolerance, thread hammering
# ----------------------------------------------------------------------

class TestCacheResilience:
    def _spec(self):
        return get_scenario("sir-transient").with_overrides(
            name="resilience-cache",
            questions=[Question("envelope", options={"n_times": 4})],
        )

    def test_transient_store_error_is_retried(self, tmp_path, fresh_faults,
                                              telemetry_on):
        spec = self._spec()
        run = run_scenario(spec, use_cache=False)
        with faults.inject(cache_store_errors=1):
            path = store_result(spec, run.result, tmp_path)
        assert path.exists()
        assert _counters()["resilience.cache.store_retries"] == 1
        assert faults.stats()["injected.cache-store-error"] == 1
        result, reason = load_cached_detail(spec, tmp_path)
        assert reason == "hit"

    def test_persistent_store_error_raises(self, tmp_path, fresh_faults):
        spec = self._spec()
        run = run_scenario(spec, use_cache=False)
        with faults.inject(cache_store_errors=2):
            with pytest.raises(OSError, match="injected"):
                store_result(spec, run.result, tmp_path)
        # No debris: every temp file was cleaned up on failure.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_cache_injection_forces_miss(self, tmp_path,
                                                 fresh_faults):
        spec = self._spec()
        run = run_scenario(spec, use_cache=False)
        store_result(spec, run.result, tmp_path)
        _, reason = load_cached_detail(spec, tmp_path)
        assert reason == "hit"
        with faults.inject(corrupt_cache=True):
            result, reason = load_cached_detail(spec, tmp_path)
        assert result is None and reason == "corrupt"
        # Disarmed again, the same entry is served.
        _, reason = load_cached_detail(spec, tmp_path)
        assert reason == "hit"

    def test_two_threads_hammering_one_spec(self, tmp_path):
        spec = self._spec()
        run = run_scenario(spec, use_cache=False)
        errors = []

        def hammer():
            for _ in range(25):
                try:
                    store_result(spec, run.result, tmp_path)
                except OSError:
                    # A racing clear_cache can sweep both temp files of
                    # one store; the retry bound makes that an OSError,
                    # never anything worse.
                    pass
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for t in threads:
            t.start()
        for _ in range(10):
            clear_cache(tmp_path)
        for t in threads:
            t.join()
        assert errors == []
        # The cache still works after the stampede.
        store_result(spec, run.result, tmp_path)
        _, reason = load_cached_detail(spec, tmp_path)
        assert reason == "hit"
        assert list(tmp_path.glob("*.tmp")) == []
