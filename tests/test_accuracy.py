"""Tests for the empirical mean-field accuracy study."""

import numpy as np
import pytest

from repro.meanfield import mean_field_accuracy
from repro.models import make_sir_model


@pytest.fixture(scope="module")
def sir_accuracy():
    return mean_field_accuracy(
        make_sir_model(), [5.0], [0.7, 0.3], 2.0,
        sizes=(100, 400, 1600), n_replications=6, seed=1,
    )


class TestAccuracyStudy:
    def test_deviation_decreases_with_n(self, sir_accuracy):
        devs = sir_accuracy.mean_deviation
        assert devs[0] > devs[1] > devs[2]

    def test_rate_near_minus_half(self, sir_accuracy):
        """The Kurtz O(1/sqrt(N)) regime (wide band: few replications)."""
        rate = sir_accuracy.fitted_rate()
        assert -0.75 < rate < -0.25

    def test_deviation_constant_positive(self, sir_accuracy):
        assert sir_accuracy.deviation_constant() > 0.0

    def test_max_at_least_mean(self, sir_accuracy):
        for mean, peak in zip(sir_accuracy.mean_deviation,
                              sir_accuracy.max_deviation):
            assert peak >= mean - 1e-12

    def test_custom_reference(self):
        """A deliberately wrong reference produces O(1) deviations."""
        study = mean_field_accuracy(
            make_sir_model(), [5.0], [0.7, 0.3], 1.0,
            sizes=(100, 400), n_replications=2, seed=0,
            reference=lambda t: np.array([0.0, 0.0]),
        )
        assert min(study.mean_deviation) > 0.3

    def test_validation(self):
        model = make_sir_model()
        with pytest.raises(ValueError):
            mean_field_accuracy(model, [5.0], [0.7, 0.3], 1.0, sizes=(100,))
        with pytest.raises(ValueError):
            mean_field_accuracy(model, [5.0], [0.7, 0.3], 1.0,
                                sizes=(100, 200), n_replications=0)
