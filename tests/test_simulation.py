"""Tests for policies and the SSA (repro.simulation)."""

import numpy as np
import pytest

from repro.simulation import (
    ConstantPolicy,
    FeedbackPolicy,
    HysteresisPolicy,
    PiecewiseConstantPolicy,
    RandomJumpPolicy,
    simulate,
)


class TestPolicies:
    def test_constant(self):
        p = ConstantPolicy([5.0])
        np.testing.assert_allclose(p.theta(0.0, np.zeros(2)), [5.0])
        assert p.jump_rate(0.0, np.zeros(2)) == 0.0
        assert p.next_switch_after(0.0) == np.inf

    def test_piecewise_lookup(self):
        p = PiecewiseConstantPolicy([(0.0, [1.0]), (2.0, [3.0])])
        np.testing.assert_allclose(p.theta(1.0, None), [1.0])
        np.testing.assert_allclose(p.theta(2.0, None), [3.0])
        np.testing.assert_allclose(p.theta(5.0, None), [3.0])

    def test_piecewise_next_switch(self):
        p = PiecewiseConstantPolicy([(0.0, [1.0]), (2.0, [3.0])])
        assert p.next_switch_after(0.0) == 2.0
        assert p.next_switch_after(2.0) == np.inf

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstantPolicy([])
        with pytest.raises(ValueError):
            PiecewiseConstantPolicy([(1.0, [1.0]), (0.0, [2.0])])

    def test_feedback(self):
        p = FeedbackPolicy(lambda t, x: [x[0] + t])
        np.testing.assert_allclose(p.theta(1.0, np.array([2.0])), [3.0])
        with pytest.raises(TypeError):
            FeedbackPolicy(42)

    def test_hysteresis_switching(self):
        # Paper theta_1: high mode until coord drops below 0.5, back above 0.85.
        p = HysteresisPolicy([1.0], [10.0], coordinate=0,
                             low_threshold=0.5, high_threshold=0.85)
        p.reset(np.random.default_rng(0), np.array([0.7]))
        assert p.in_high_mode
        np.testing.assert_allclose(p.theta(0.0, np.array([0.7])), [10.0])
        # Drop below low threshold -> switch to low mode.
        np.testing.assert_allclose(p.theta(1.0, np.array([0.4])), [1.0])
        assert not p.in_high_mode
        # Stay low in the hysteresis band.
        np.testing.assert_allclose(p.theta(2.0, np.array([0.7])), [1.0])
        # Rise above high threshold -> back to high mode.
        np.testing.assert_allclose(p.theta(3.0, np.array([0.9])), [10.0])

    def test_hysteresis_reset(self):
        p = HysteresisPolicy([1.0], [10.0], 0, 0.5, 0.85, start_high=True)
        p.theta(0.0, np.array([0.4]))  # flips to low
        p.reset(np.random.default_rng(0), np.array([0.7]))
        assert p.in_high_mode

    def test_hysteresis_validation(self):
        with pytest.raises(ValueError):
            HysteresisPolicy([1.0], [10.0], 0, 0.9, 0.5)

    def test_random_jump_policy(self, sir_model, rng):
        p = RandomJumpPolicy(sir_model.theta_set,
                             rate_fn=lambda t, x: 5.0 * x[1])
        p.reset(rng, np.array([0.7, 0.3]))
        assert p.jump_rate(0.0, np.array([0.7, 0.3])) == pytest.approx(1.5)
        before = p.theta(0.0, None).copy()
        p.on_jump(0.0, np.array([0.7, 0.3]), rng)
        after = p.theta(0.0, None)
        assert sir_model.theta_set.contains(after)
        assert not np.allclose(before, after) or True  # may coincide rarely

    def test_random_jump_negative_rate_clamped(self, sir_model):
        p = RandomJumpPolicy(sir_model.theta_set, rate_fn=lambda t, x: -1.0)
        assert p.jump_rate(0.0, None) == 0.0

    def test_random_jump_initial_validated(self, sir_model):
        with pytest.raises(ValueError):
            RandomJumpPolicy(sir_model.theta_set, lambda t, x: 1.0,
                             initial=[99.0])


class TestSSA:
    def test_basic_run(self, sir_model, rng):
        pop = sir_model.instantiate(200, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 1.0, rng=rng, n_samples=50)
        assert run.times.shape == (50,)
        assert run.states.shape == (50, 2)
        assert run.n_events > 0
        assert run.population_size == 200

    def test_states_on_lattice(self, sir_model, rng):
        n = 100
        pop = sir_model.instantiate(n, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 1.0, rng=rng, n_samples=20)
        counts = run.states * n
        np.testing.assert_allclose(counts, np.rint(counts), atol=1e-9)

    def test_states_stay_in_bounds(self, sir_model, rng):
        pop = sir_model.instantiate(50, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([10.0]), 5.0, rng=rng)
        assert np.all(run.states >= -1e-12)
        assert np.all(run.states.sum(axis=1) <= 1.0 + 1e-12)

    def test_reproducible_with_seed(self, sir_model):
        pop = sir_model.instantiate(100, [0.7, 0.3])
        a = simulate(pop, ConstantPolicy([5.0]), 1.0,
                     rng=np.random.default_rng(3), n_samples=30)
        b = simulate(pop, ConstantPolicy([5.0]), 1.0,
                     rng=np.random.default_rng(3), n_samples=30)
        np.testing.assert_allclose(a.states, b.states)
        assert a.n_events == b.n_events

    def test_default_rng_is_deterministic(self, sir_model):
        # The argument-less form must replay, not draw global entropy:
        # two calls without an rng produce the identical trajectory.
        pop = sir_model.instantiate(100, [0.7, 0.3])
        a = simulate(pop, ConstantPolicy([5.0]), 1.0, n_samples=30)
        b = simulate(pop, ConstantPolicy([5.0]), 1.0, n_samples=30)
        np.testing.assert_array_equal(a.states, b.states)
        assert a.n_events == b.n_events

    def test_invalid_arguments(self, sir_model, rng):
        pop = sir_model.instantiate(10, [0.7, 0.3])
        with pytest.raises(ValueError):
            simulate(pop, ConstantPolicy([5.0]), 0.0, rng=rng)
        with pytest.raises(ValueError):
            simulate(pop, ConstantPolicy([5.0]), 1.0, rng=rng, n_samples=1)

    def test_max_events_cap(self, sir_model, rng):
        pop = sir_model.instantiate(1000, [0.7, 0.3])
        with pytest.raises(RuntimeError):
            simulate(pop, ConstantPolicy([5.0]), 100.0, rng=rng,
                     max_events=100)

    def test_absorbed_chain_finishes(self, rng):
        # A pure-death chain reaches 0 and stays: SSA must not spin.
        from repro.params import Interval
        from repro.population import PopulationModel, Transition

        death = Transition("death", [-1.0], lambda x, th: th[0] * x[0])
        model = PopulationModel("death", ("x",), [death], Interval(0.5, 2.0),
                                state_bounds=([0.0], [1.0]))
        pop = model.instantiate(20, [0.5])
        run = simulate(pop, ConstantPolicy([1.0]), 100.0, rng=rng,
                       n_samples=40)
        assert run.states[-1, 0] == 0.0
        assert run.n_events == 10

    def test_theta_projected_into_domain(self, sir_model, rng):
        pop = sir_model.instantiate(50, [0.7, 0.3])
        run = simulate(pop, FeedbackPolicy(lambda t, x: [99.0]), 0.5,
                       rng=rng, n_samples=10)
        assert np.all(run.thetas <= 10.0 + 1e-12)

    def test_piecewise_schedule_respected(self, sir_model, rng):
        # theta jumps at t = 0.5; sampled thetas must reflect the schedule.
        policy = PiecewiseConstantPolicy([(0.0, [1.0]), (0.5, [10.0])])
        pop = sir_model.instantiate(100, [0.7, 0.3])
        run = simulate(pop, policy, 1.0, rng=rng, n_samples=101)
        early = run.thetas[run.times < 0.5]
        late = run.thetas[run.times > 0.55]
        np.testing.assert_allclose(early, 1.0)
        np.testing.assert_allclose(late, 10.0)

    def test_policy_jumps_counted(self, sir_model, rng):
        policy = RandomJumpPolicy(sir_model.theta_set,
                                  rate_fn=lambda t, x: 50.0)
        pop = sir_model.instantiate(100, [0.7, 0.3])
        run = simulate(pop, policy, 1.0, rng=rng)
        assert run.n_policy_jumps > 10

    def test_after_burn_in(self, sir_model, rng):
        pop = sir_model.instantiate(100, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 2.0, rng=rng,
                       n_samples=100)
        tail = run.after(1.0)
        assert tail.times[0] >= 1.0
        with pytest.raises(ValueError):
            run.after(5.0)

    def test_observable_series(self, sir_model, rng):
        pop = sir_model.instantiate(100, [0.7, 0.3])
        run = simulate(pop, ConstantPolicy([5.0]), 1.0, rng=rng, n_samples=20)
        total = run.observable([1.0, 1.0])
        np.testing.assert_allclose(total, run.states.sum(axis=1))

    def test_hysteresis_induces_oscillation(self, sir_model):
        """The paper's theta_1 policy drives S up and down repeatedly."""
        policy = HysteresisPolicy([1.0], [10.0], coordinate=0,
                                  low_threshold=0.5, high_threshold=0.85)
        pop = sir_model.instantiate(1000, [0.7, 0.3])
        run = simulate(pop, policy, 20.0, rng=np.random.default_rng(11),
                       n_samples=400)
        theta = run.thetas[:, 0]
        # Both modes occur, and the policy flips repeatedly (oscillation).
        assert np.any(theta == 1.0)
        assert np.any(theta == 10.0)
        n_switches = int(np.count_nonzero(np.abs(np.diff(theta)) > 1e-9))
        assert n_switches >= 4
