"""Statistical equivalence of the vectorized and scalar SSA engines.

The two engines consume randomness differently, so trajectories differ
path-by-path even for the same seed; what must agree is the *law* of
the ensemble.  With fixed seeds these tests are deterministic, and the
seeds are chosen so the checks sit far from their thresholds:

- ensemble mean and std paths agree within CLT-scale tolerances
  (standard errors of the corresponding estimators, with a lattice-step
  floor);
- the final-state clouds agree under a two-sample Kolmogorov–Smirnov
  test per coordinate (p > 0.01);

for the paper's SIR model (constant, hysteresis and random-jump
policies — the last two are exactly the Figure 6 environments) and the
power-of-``d``-choices load balancer (higher-dimensional state with
boundary-disabled events, stressing the per-row masking of the batched
rate evaluator).
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.models import make_power_of_d_model, make_sir_model
from repro.simulation import (
    ConstantPolicy,
    HysteresisPolicy,
    RandomJumpPolicy,
    batch_simulate,
)


def run_both_engines(population, policy_factory, t_final, n_runs, seed,
                     n_samples=21):
    vec = batch_simulate(population, policy_factory, t_final, n_runs=n_runs,
                         seed=seed, n_samples=n_samples, engine="vectorized")
    sca = batch_simulate(population, policy_factory, t_final, n_runs=n_runs,
                         seed=seed, n_samples=n_samples, engine="scalar")
    return vec, sca


def assert_clt_equivalent(vec, sca, n_runs, population_size):
    """Mean/std paths agree within CLT-scale standard errors."""
    floor = 3.0 / population_size  # lattice resolution
    se_mean = np.sqrt(vec.std() ** 2 + sca.std() ** 2) / np.sqrt(n_runs)
    mean_gap = np.abs(vec.mean() - sca.mean())
    np.testing.assert_array_less(mean_gap, 6.0 * se_mean + floor)

    se_std = (vec.std() + sca.std()) / (2 * np.sqrt(2.0 * (n_runs - 1)))
    std_gap = np.abs(vec.std() - sca.std())
    np.testing.assert_array_less(std_gap, 6.0 * se_std + floor)


def assert_ks_equivalent(vec, sca, alpha=0.01):
    """Final-state clouds agree per coordinate (two-sample KS)."""
    vec_finals = vec.final_states()
    sca_finals = sca.final_states()
    for coordinate in range(vec_finals.shape[1]):
        stat = ks_2samp(vec_finals[:, coordinate], sca_finals[:, coordinate])
        assert stat.pvalue > alpha, (
            f"coordinate {coordinate}: KS D={stat.statistic:.3f}, "
            f"p={stat.pvalue:.4f}"
        )


class TestSIREquivalence:
    N_RUNS = 80

    def test_constant_policy(self, sir_model):
        population = sir_model.instantiate(200, [0.7, 0.3])
        vec, sca = run_both_engines(
            population, lambda: ConstantPolicy([5.0]), 2.0,
            n_runs=self.N_RUNS, seed=11,
        )
        assert_clt_equivalent(vec, sca, self.N_RUNS, 200)
        assert_ks_equivalent(vec, sca)

    def test_hysteresis_policy_theta1(self, sir_model):
        factory = lambda: HysteresisPolicy(  # noqa: E731
            [1.0], [10.0], coordinate=0,
            low_threshold=0.5, high_threshold=0.85,
        )
        population = sir_model.instantiate(200, [0.7, 0.3])
        vec, sca = run_both_engines(
            population, factory, 2.0, n_runs=self.N_RUNS, seed=12,
        )
        assert_clt_equivalent(vec, sca, self.N_RUNS, 200)
        assert_ks_equivalent(vec, sca)

    def test_random_jump_policy_theta2(self, sir_model):
        factory = lambda: RandomJumpPolicy(  # noqa: E731
            sir_model.theta_set, rate_fn=lambda t, x: 5.0 * x[1],
        )
        population = sir_model.instantiate(200, [0.7, 0.3])
        vec, sca = run_both_engines(
            population, factory, 2.0, n_runs=self.N_RUNS, seed=13,
        )
        assert_clt_equivalent(vec, sca, self.N_RUNS, 200)
        assert_ks_equivalent(vec, sca)
        # Both engines exercised the autonomous policy race.
        assert vec.n_policy_jumps > 0
        assert sca.n_policy_jumps > 0


class TestPowerOfDEquivalence:
    N_RUNS = 60

    @pytest.fixture
    def pod_population(self):
        model = make_power_of_d_model(buffer_depth=5)
        x0 = np.zeros(5)
        x0[0] = 0.5
        return model, model.instantiate(150, x0)

    def test_constant_policy(self, pod_population):
        model, population = pod_population
        vec, sca = run_both_engines(
            population, lambda: ConstantPolicy([0.9]), 1.5,
            n_runs=self.N_RUNS, seed=21,
        )
        assert_clt_equivalent(vec, sca, self.N_RUNS, 150)
        assert_ks_equivalent(vec, sca)

    def test_batched_rates_match_scalar_rates(self, pod_population):
        """The batched rate evaluator agrees with the scalar one row-by-row
        on random lattice states (exact, not statistical)."""
        model, population = pod_population
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 151, size=(32, 5))
        # Enforce the tail-coordinate monotonicity x_1 >= x_2 >= ... of
        # reachable states.
        counts = np.sort(counts, axis=1)[:, ::-1]
        thetas = model.theta_set.sample(rng, 32)
        batched = population.aggregate_rates_batch(counts, thetas)
        for r in range(32):
            np.testing.assert_allclose(
                batched[r],
                population.aggregate_rates(counts[r], thetas[r]),
                rtol=1e-12, atol=1e-12,
            )


class TestBatchedRateFallback:
    def test_reduction_rate_functions_fall_back_not_pool(self):
        """A rate written as a reduction (np.sum over the state) returns
        a 0-d value on the coordinate-major batch; it must route through
        the per-row fallback, never be broadcast batch-pooled."""
        from repro.params import Interval
        from repro.population import PopulationModel, Transition

        model = PopulationModel(
            "reduction_rate",
            state_names=("a", "b"),
            transitions=[
                Transition("sum_rate", change=[1.0, 0.0],
                           rate=lambda x, th: 0.3 * np.sum(x)),
                # Partial reduction: right (n,) shape, row-pooled
                # values — only the first-call cross-check catches it.
                Transition("mixed_rate", change=[0.0, 1.0],
                           rate=lambda x, th: x[0] * np.sum(x)),
                Transition("drain", change=[-1.0, 0.0],
                           rate=lambda x, th: x[0]),
            ],
            theta_set=Interval(0.0, 1.0),
        )
        x = np.array([[0.2, 0.1], [0.4, 0.3], [0.6, 0.1]])
        thetas = np.full((3, 1), 0.5)
        batched = model.transition_rates_batch(x, thetas)
        expected = np.stack([model.transition_rates(x[r], thetas[r])
                             for r in range(3)])
        np.testing.assert_allclose(batched, expected, rtol=1e-12)

    def test_mean_pooling_rate_not_blessed_on_identical_rows(self):
        """np.mean over the coordinate-major batch equals the correct
        value when all rows are identical (the engine's first step), so
        validation must defer until rows are distinct — never cache a
        verdict from the degenerate batch."""
        from repro.params import Interval
        from repro.population import PopulationModel, Transition

        model = PopulationModel(
            "mean_pool", ("a", "b"),
            transitions=[
                Transition("pooled", change=[1.0, 0.0],
                           rate=lambda x, th: th[0] * np.mean(x)),
            ],
            theta_set=Interval(0.0, 1.0),
        )
        identical = np.tile([0.2, 0.1], (4, 1))
        thetas = np.full((4, 1), 0.5)
        model.transition_rates_batch(identical, thetas)
        assert model._batch_rate_ok.get(0) is None  # verdict deferred

        distinct = np.array([[0.2, 0.1], [0.4, 0.05], [0.05, 0.05],
                             [0.3, 0.2]])
        batched = model.transition_rates_batch(distinct, thetas)
        expected = np.stack([model.transition_rates(distinct[r], thetas[r])
                             for r in range(4)])
        np.testing.assert_allclose(batched, expected[:, :], rtol=1e-12)
        assert model._batch_rate_ok.get(0) is False  # pooling detected

    def test_reduction_jump_rate_falls_back(self, sir_model):
        """Same hole for RandomJumpPolicy rate functions."""
        factory = lambda: RandomJumpPolicy(  # noqa: E731
            sir_model.theta_set, rate_fn=lambda t, x: 4.0 * np.sum(x),
        )
        population = sir_model.instantiate(100, [0.7, 0.3])
        vec, sca = run_both_engines(population, factory, 1.0, n_runs=40,
                                    seed=31, n_samples=11)
        # With the pooled-broadcast bug the vectorized jump rate is
        # ~n_runs times too large; jump counts expose that immediately.
        assert vec.n_policy_jumps < 5 * max(sca.n_policy_jumps, 1)


class TestShardedSweep:
    def test_serial_and_pooled_shards_agree(self):
        """Shard results are a function of (seed, grid) only — the
        process count must not change them."""
        from repro.engine import sweep_constant_ensembles

        grid = make_sir_model().theta_set.grid(3)
        kwargs = dict(
            x0=[0.7, 0.3], population_size=150, thetas=grid,
            t_final=1.0, n_runs=4, seed=42, n_samples=11,
        )
        serial = sweep_constant_ensembles(make_sir_model, **kwargs)
        pooled = sweep_constant_ensembles(make_sir_model, processes=2,
                                          **kwargs)
        assert len(serial) == len(pooled) == grid.shape[0]
        for a, b in zip(serial, pooled):
            np.testing.assert_array_equal(a.states, b.states)
        # Different grid points use independent streams.
        assert not np.array_equal(serial[0].states, serial[1].states)

    def test_shard_streams_pinned_to_seedsequence_spawn(self):
        """Shard ``i`` consumes exactly the ``i``-th spawn of
        ``SeedSequence(seed)`` — the contract that makes sweeps
        reproducible for a fixed seed regardless of worker count."""
        from repro.engine import simulate_ensemble, sweep_constant_ensembles
        from repro.simulation import ConstantPolicy

        grid = np.array([[2.0], [8.0]])
        seed = 99
        sweep = sweep_constant_ensembles(
            make_sir_model, x0=[0.7, 0.3], population_size=120,
            thetas=grid, t_final=0.8, n_runs=3, seed=seed, n_samples=9,
        )
        spawned = np.random.SeedSequence(seed).spawn(grid.shape[0])
        model = make_sir_model()
        for i, theta in enumerate(grid):
            direct = simulate_ensemble(
                model.instantiate(120, [0.7, 0.3]),
                lambda: ConstantPolicy(theta), 0.8, n_runs=3,
                rng=np.random.default_rng(spawned[i]), n_samples=9,
            )
            np.testing.assert_array_equal(sweep[i].states, direct.states)

    def test_seed_accepts_a_seedsequence(self):
        from repro.engine import sweep_constant_ensembles

        kwargs = dict(
            x0=[0.7, 0.3], population_size=80, thetas=[3.0],
            t_final=0.5, n_runs=2, n_samples=6,
        )
        a = sweep_constant_ensembles(make_sir_model, seed=7, **kwargs)
        b = sweep_constant_ensembles(
            make_sir_model, seed=np.random.SeedSequence(7), **kwargs
        )
        np.testing.assert_array_equal(a[0].states, b[0].states)

    def test_scalar_sequence_means_one_shard_per_scalar(self):
        """thetas=[2, 5, 8] is three scalar grid points, not one 3-D one."""
        from repro.engine import sweep_constant_ensembles

        results = sweep_constant_ensembles(
            make_sir_model, x0=[0.7, 0.3], population_size=100,
            thetas=[2.0, 5.0, 8.0], t_final=0.5, n_runs=2, seed=1,
            n_samples=6,
        )
        assert len(results) == 3

    def test_empty_grid_rejected(self):
        from repro.engine import sweep_constant_ensembles

        with pytest.raises(ValueError, match="grid point"):
            sweep_constant_ensembles(
                make_sir_model, x0=[0.7, 0.3], population_size=50,
                thetas=np.empty((0, 1)), t_final=1.0, n_runs=2,
            )


class TestEngineDeterminism:
    def test_same_seed_same_ensemble(self, sir_model):
        population = sir_model.instantiate(100, [0.7, 0.3])
        a = batch_simulate(population, lambda: ConstantPolicy([5.0]), 1.0,
                           n_runs=10, seed=5, n_samples=11)
        b = batch_simulate(population, lambda: ConstantPolicy([5.0]), 1.0,
                           n_runs=10, seed=5, n_samples=11)
        np.testing.assert_array_equal(a.states, b.states)

    def test_different_seeds_differ(self, sir_model):
        population = sir_model.instantiate(100, [0.7, 0.3])
        a = batch_simulate(population, lambda: ConstantPolicy([5.0]), 1.0,
                           n_runs=10, seed=5, n_samples=11)
        b = batch_simulate(population, lambda: ConstantPolicy([5.0]), 1.0,
                           n_runs=10, seed=6, n_samples=11)
        assert not np.array_equal(a.states, b.states)
