"""Unit tests for planar geometry (repro.geometry)."""

import numpy as np
import pytest

from repro.geometry import (
    ConvexPolygon,
    convex_hull,
    point_in_polygon,
    polygon_area,
    polygon_centroid,
    segment_midpoints,
)

UNIT_SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]


class TestConvexHull:
    def test_square_with_interior_point(self):
        hull = convex_hull(UNIT_SQUARE + [(0.5, 0.5)])
        assert hull.shape == (4, 2)

    def test_ccw_orientation(self):
        hull = convex_hull(UNIT_SQUARE)
        assert polygon_area(hull) > 0

    def test_collinear_points_dropped(self):
        hull = convex_hull([(0, 0), (0.5, 0.0), (1, 0), (1, 1), (0, 1)])
        assert hull.shape == (4, 2)

    def test_duplicates_dropped(self):
        hull = convex_hull(UNIT_SQUARE + UNIT_SQUARE)
        assert hull.shape == (4, 2)

    def test_all_collinear_returns_extremes(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2), (0.3, 0.3)])
        assert hull.shape == (2, 2)
        np.testing.assert_allclose(hull, [[0, 0], [2, 2]])

    def test_single_point(self):
        hull = convex_hull([(3.0, 4.0)])
        np.testing.assert_allclose(hull, [[3.0, 4.0]])

    def test_two_points(self):
        hull = convex_hull([(0, 0), (1, 0)])
        assert hull.shape == (2, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convex_hull(np.empty((0, 2)))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            convex_hull([[1.0, 2.0, 3.0]])

    def test_random_cloud_contains_all_points(self, rng):
        pts = rng.normal(size=(200, 2))
        hull = convex_hull(pts)
        poly = ConvexPolygon(hull)
        for p in pts:
            assert poly.contains(p, tol=1e-9)


class TestAreaCentroid:
    def test_unit_square_area(self):
        assert polygon_area(UNIT_SQUARE) == pytest.approx(1.0)

    def test_cw_area_negative(self):
        assert polygon_area(UNIT_SQUARE[::-1]) == pytest.approx(-1.0)

    def test_triangle_area(self):
        assert polygon_area([(0, 0), (2, 0), (0, 2)]) == pytest.approx(2.0)

    def test_degenerate_area_zero(self):
        assert polygon_area([(0, 0), (1, 1)]) == 0.0

    def test_square_centroid(self):
        np.testing.assert_allclose(polygon_centroid(UNIT_SQUARE), [0.5, 0.5])

    def test_degenerate_centroid_is_mean(self):
        np.testing.assert_allclose(
            polygon_centroid([(0, 0), (2, 2)]), [1.0, 1.0]
        )


class TestPointInPolygon:
    def test_interior(self):
        assert point_in_polygon((0.5, 0.5), UNIT_SQUARE)

    def test_exterior(self):
        assert not point_in_polygon((1.5, 0.5), UNIT_SQUARE)

    def test_boundary_counts_inside(self):
        assert point_in_polygon((0.5, 0.0), UNIT_SQUARE, tol=1e-9)
        assert point_in_polygon((1.0, 1.0), UNIT_SQUARE, tol=1e-9)

    def test_nonconvex_polygon(self):
        # L-shape: point in the notch is outside.
        l_shape = [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)]
        assert point_in_polygon((0.5, 1.5), l_shape)
        assert not point_in_polygon((1.5, 1.5), l_shape)

    def test_empty_polygon(self):
        assert not point_in_polygon((0.0, 0.0), np.empty((0, 2)))

    def test_single_vertex(self):
        assert point_in_polygon((1.0, 1.0), [(1.0, 1.0)])
        assert not point_in_polygon((1.1, 1.0), [(1.0, 1.0)])


class TestSegmentMidpoints:
    def test_square_midpoints(self):
        mids = segment_midpoints(UNIT_SQUARE)
        assert mids.shape == (4, 2)
        np.testing.assert_allclose(mids[0], [0.5, 0.0])
        np.testing.assert_allclose(mids[-1], [0.0, 0.5])


class TestConvexPolygon:
    def test_construction_hulls_input(self):
        poly = ConvexPolygon(UNIT_SQUARE + [(0.5, 0.5)])
        assert poly.n_vertices == 4

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (1, 1), (2, 2)])

    def test_area_and_centroid(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        assert poly.area == pytest.approx(1.0)
        np.testing.assert_allclose(poly.centroid, [0.5, 0.5])

    def test_contains(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        assert poly.contains((0.3, 0.7))
        assert not poly.contains((1.2, 0.5))

    def test_contains_with_tolerance(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        assert poly.contains((1.0005, 0.5), tol=1e-3)
        assert not poly.contains((1.01, 0.5), tol=1e-3)

    def test_distance_inside_zero(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        assert poly.distance((0.5, 0.5)) == 0.0

    def test_distance_outside(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        assert poly.distance((2.0, 0.5)) == pytest.approx(1.0)
        assert poly.distance((2.0, 2.0)) == pytest.approx(np.sqrt(2.0))

    def test_outward_normals_unit_and_outward(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        normals = poly.outward_normals()
        np.testing.assert_allclose(np.linalg.norm(normals, axis=1), 1.0)
        mids = segment_midpoints(poly.vertices)
        centroid = poly.centroid
        for mid, n in zip(mids, normals):
            assert (mid - centroid) @ n > 0

    def test_boundary_points_on_boundary(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        pts, normals = poly.boundary_points(per_edge=3)
        assert pts.shape == (12, 2)
        assert normals.shape == (12, 2)
        for p in pts:
            assert poly.distance(p) == pytest.approx(0.0, abs=1e-12)

    def test_boundary_points_invalid(self):
        with pytest.raises(ValueError):
            ConvexPolygon(UNIT_SQUARE).boundary_points(per_edge=0)

    def test_signed_margin_signs(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        margins = poly.signed_margin([(0.5, 0.5), (2.0, 0.5), (1.0, 0.5)])
        assert margins[0] < 0
        assert margins[1] == pytest.approx(1.0)
        assert margins[2] == pytest.approx(0.0, abs=1e-12)

    def test_expanded_with_grows(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        grown = poly.expanded_with([(2.0, 0.5)])
        assert grown.area > poly.area
        assert grown.contains((1.5, 0.5))

    def test_expanded_with_interior_point_no_change(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        same = poly.expanded_with([(0.5, 0.5)])
        assert same.area == pytest.approx(poly.area)

    def test_simplified_reduces_vertices(self):
        angles = np.linspace(0, 2 * np.pi, 500, endpoint=False)
        circle = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        poly = ConvexPolygon(circle)
        simple = poly.simplified(1e-3)
        assert simple.n_vertices < poly.n_vertices
        # Simplification only shrinks, and not by much.
        assert simple.area <= poly.area + 1e-12
        assert simple.area > 0.95 * poly.area

    def test_simplified_zero_tolerance_identity(self):
        poly = ConvexPolygon(UNIT_SQUARE)
        same = poly.simplified(0.0)
        assert same.n_vertices == 4

    def test_repr(self):
        assert "ConvexPolygon" in repr(ConvexPolygon(UNIT_SQUARE))
