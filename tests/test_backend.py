"""The compiled-array backend seam (repro.backend).

Selection mechanics (env var, ``set_backend``, CLI flag, fallback),
memoization (kernels compile once per backend, models once per pair),
the REG005 compilability contract, and the numpy reference semantics
(the seam's numpy path is the direct bound-method call, bit for bit).
The differential per-backend numerics live with their suites
(``test_ode_batch``/``test_extremizer_batch``/``test_ctmc_credal_batch``);
this file owns the plumbing.
"""

import contextlib
import io

import numpy as np
import pytest

from repro import telemetry
from repro.__main__ import build_parser, main
from repro.backend import (
    ArrayBackend,
    BACKEND_ENV_VAR,
    NumpyBackend,
    available_backends,
    get_backend,
    kernel_compilable,
    registered_backends,
    reset_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.models import make_sir_model
from repro.scenarios.registry import _REGISTRY, register_scenario
from repro.scenarios.spec import Question, ScenarioSpec


@pytest.fixture(autouse=True)
def _backend_isolation(monkeypatch):
    """Every test starts from an unresolved process default, no env."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    reset_backend()
    yield
    reset_backend()


@pytest.fixture
def metrics():
    telemetry.enable()
    telemetry.clear()
    yield
    telemetry.disable()
    telemetry.clear()


# ----------------------------------------------------------------------
# Registry and resolution order
# ----------------------------------------------------------------------

class TestResolution:
    def test_registry_knows_both_backends(self):
        names = registered_backends()
        assert "numpy" in names
        assert "numba" in names
        # numpy is unconditionally available; numba only when installed.
        assert "numpy" in available_backends()

    def test_default_is_numpy(self):
        assert get_backend().name == "numpy"
        assert isinstance(get_backend(), NumpyBackend)

    def test_env_var_resolves_once(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().name == "numpy"
        # The env is read once per process: later changes are ignored.
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-a-backend")
        assert get_backend().name == "numpy"

    def test_env_var_unknown_name_warns_and_falls_back(self, monkeypatch,
                                                       metrics):
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-a-backend")
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            backend = get_backend()
        assert backend.name == "numpy"
        counters = telemetry.snapshot()["counters"]
        assert counters["backend.fallback"] == 1
        assert counters["backend.fallback.definitely-not-a-backend"] == 1

    def test_set_backend_outranks_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-a-backend")
        assert set_backend("numpy").name == "numpy"
        # No warning fired: the env name was never resolved.
        assert get_backend().name == "numpy"

    def test_explicit_argument_outranks_default(self):
        sentinel = NumpyBackend()
        assert resolve_backend(sentinel) is sentinel
        assert resolve_backend(None) is get_backend()
        assert resolve_backend("numpy").name == "numpy"

    def test_use_backend_restores_previous(self):
        original = get_backend()
        with use_backend(NumpyBackend()) as inner:
            assert get_backend() is inner
            assert inner is not original
        assert get_backend() is original

    def test_missing_or_unknown_backend_never_crashes(self, metrics):
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            backend = resolve_backend("tpu-v9")
        assert backend.name == "numpy"
        assert telemetry.snapshot()["counters"]["backend.fallback.tpu-v9"] == 1

    def test_requested_numba_resolves_or_falls_back(self, metrics):
        if "numba" in available_backends():
            assert resolve_backend("numba").name == "numba"
        else:
            with pytest.warns(RuntimeWarning, match="not installed"):
                backend = resolve_backend("numba")
            assert backend.name == "numpy"
            counters = telemetry.snapshot()["counters"]
            assert counters["backend.fallback.numba"] == 1

    def test_register_backend_rejects_non_subclass(self):
        from repro.backend import register_backend

        with pytest.raises(TypeError):
            register_backend("bogus", dict)


# ----------------------------------------------------------------------
# Kernel and model-kernel memoization
# ----------------------------------------------------------------------

class TestMemoization:
    def test_compile_kernel_memoizes_on_key(self, metrics):
        backend = NumpyBackend()

        def kernel(x):
            return x + 1.0

        first = backend.compile_kernel(kernel, key="test.k")
        second = backend.compile_kernel(kernel, key="test.k")
        assert first is second
        # numpy compilation is the identity.
        assert first is kernel
        counters = telemetry.snapshot()["counters"]
        assert counters["backend.numpy.kernel_dispatch"] == 2

    def test_model_kernels_are_the_bound_methods(self, sir_model, metrics):
        backend = NumpyBackend()
        kernels = backend.model_kernels(sir_model)
        assert kernels.backend_name == "numpy"
        assert kernels.drift == sir_model.drift_batch
        assert kernels.rates == sir_model.transition_rates_batch
        assert kernels.affine == sir_model.affine_parts_batch
        assert kernels.jacobian == sir_model.jacobian_x_batch
        # Memoized per (model, backend).
        assert backend.model_kernels(sir_model) is kernels
        counters = telemetry.snapshot()["counters"]
        assert counters["backend.numpy.model_kernel_dispatch"] == 2

    def test_backend_kernels_helper_threads_names(self, sir_model):
        kernels = sir_model.backend_kernels("numpy")
        assert kernels.backend_name == "numpy"

    def test_numpy_path_is_bit_identical(self, sir_model, rng):
        x = rng.uniform(0.05, 0.9, size=(16, 2))
        theta = rng.uniform(0.5, 5.0, size=(16, 1))
        kernels = sir_model.backend_kernels("numpy")
        np.testing.assert_array_equal(
            kernels.drift(x, theta), sir_model.drift_batch(x, theta)
        )
        np.testing.assert_array_equal(
            kernels.rates(x, theta),
            sir_model.transition_rates_batch(x, theta),
        )


# ----------------------------------------------------------------------
# Compilability contract (REG005 basis)
# ----------------------------------------------------------------------

class TestKernelCompilable:
    def test_pure_numpy_with_scalar_captures_is_ok(self):
        scale = 2.0
        weights = np.array([1.0, 2.0])

        def kernel(x, th):
            return scale * np.dot(x, weights) * th[0]

        ok, reason = kernel_compilable(kernel)
        assert ok, reason

    def test_helper_function_captures_recurse(self):
        def helper(x):
            return np.square(x)

        def kernel(x, th):
            return helper(x) + th[0]

        ok, reason = kernel_compilable(kernel)
        assert ok, reason

    @pytest.mark.parametrize("capture, fragment", [
        ({"scale": 2.0}, "container"),
        ([1.0, 2.0], "container"),
        ({1, 2}, "container"),
        (io.StringIO(), "object"),
    ])
    def test_python_object_captures_are_rejected(self, capture, fragment):
        def kernel(x, th):
            return x[0] * th[0] if capture else x[0]

        ok, reason = kernel_compilable(kernel)
        assert not ok
        assert fragment in reason

    def test_non_function_is_rejected(self):
        ok, reason = kernel_compilable(np.ndarray)
        assert not ok

    def test_catalog_models_are_compilable(self, sir_model):
        for label, fn in sir_model.batch_kernel_declarations().items():
            ok, reason = kernel_compilable(fn)
            assert ok, f"{label}: {reason}"


# ----------------------------------------------------------------------
# The seam under public entry points
# ----------------------------------------------------------------------

class TestEntryPoints:
    def test_ode_batch_accepts_backend(self, sir_model, sir_x0):
        from repro.ode import rk4_integrate_batch

        def field(t, X):
            return sir_model.drift_batch(X, np.full((X.shape[0], 1), 2.0))

        t_eval = np.linspace(0.0, 1.0, 9)
        default = rk4_integrate_batch(field, sir_x0[None, :], t_eval)
        routed = rk4_integrate_batch(field, sir_x0[None, :], t_eval,
                                     backend="numpy")
        np.testing.assert_array_equal(routed.states, default.states)

    def test_sweep_backend_is_bit_identical(self, metrics):
        from repro.engine import sweep_constant_ensembles

        kwargs = dict(x0=[0.7, 0.3], population_size=30,
                      thetas=[1.0, 3.0], t_final=0.3, n_runs=2,
                      n_samples=5, seed=7)
        default = sweep_constant_ensembles(make_sir_model, **kwargs)
        routed = sweep_constant_ensembles(make_sir_model, backend="numpy",
                                          **kwargs)
        for a, b in zip(default, routed):
            np.testing.assert_array_equal(a.states, b.states)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _tiny_spec(name):
    return ScenarioSpec(
        name=name,
        title="backend CLI probe",
        model_factory=make_sir_model,
        x0=(0.9, 0.1),
        horizon=0.5,
        questions=(Question("envelope",
                            options={"n_times": 3, "resolution": 2}),),
        observables=("I",),
    )


class TestCli:
    def test_run_parser_accepts_backend_flag(self):
        args = build_parser().parse_args(
            ["run", "anything", "--backend", "numba"]
        )
        assert args.backend == "numba"
        assert build_parser().parse_args(["run", "x"]).backend is None

    def test_run_with_backend_flag_sets_process_default(self):
        spec = _tiny_spec("backend-cli-probe")
        register_scenario(spec)
        out = io.StringIO()
        try:
            with contextlib.redirect_stdout(out):
                code = main(["run", spec.name, "--no-cache",
                             "--backend", "numpy"])
        finally:
            _REGISTRY.pop(spec.name, None)
        assert code == 0
        assert "run report" in out.getvalue()
        # --backend installed the process default as well.
        assert get_backend().name == "numpy"

    def test_run_with_unknown_backend_warns_and_completes(self):
        spec = _tiny_spec("backend-cli-fallback-probe")
        register_scenario(spec)
        out = io.StringIO()
        try:
            with pytest.warns(RuntimeWarning, match="falling back to numpy"):
                with contextlib.redirect_stdout(out):
                    code = main(["run", spec.name, "--no-cache",
                                 "--backend", "not-a-backend"])
        finally:
            _REGISTRY.pop(spec.name, None)
        assert code == 0
        assert get_backend().name == "numpy"


# ----------------------------------------------------------------------
# Subclass surface (what a JAX backend would implement)
# ----------------------------------------------------------------------

class TestSubclassSeam:
    def test_compile_hook_is_the_only_required_override(self):
        calls = []

        class Doubler(ArrayBackend):
            name = "doubler"

            def _compile(self, fn, key):
                calls.append(key)
                return lambda *a: 2.0 * fn(*a)

        backend = Doubler()
        kernel = backend.compile_kernel(lambda x: x + 1.0, key="k")
        assert kernel(1.0) == 4.0
        # Memoized: a second request does not recompile.
        backend.compile_kernel(lambda x: x, key="k")
        assert calls == ["k"]
        assert backend.xp is np
