"""Shared fixtures for the test suite, and the hypothesis profiles.

Two registered profiles:

- ``dev`` (default): hypothesis as shipped, but without the wall-clock
  deadline — bound computations have data-dependent runtimes that make
  per-example deadlines flaky on loaded machines.
- ``ci``: additionally derandomized, so a CI failure is reproducible
  from the log alone and reruns are deterministic.

Select with ``HYPOTHESIS_PROFILE=ci`` (the workflow does); locally the
``dev`` profile keeps random exploration on.
"""

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "dev",
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "ci",
        deadline=None,
        derandomize=True,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass

from repro.models import (
    make_bike_station_model,
    make_gps_map_model,
    make_gps_poisson_model,
    make_seir_model,
    make_sir_full_model,
    make_sir_model,
)


#: One pytest param per registered compiled-array backend.  The numba
#: param carries the ``backend_numba`` marker so numpy-only CI jobs can
#: *deselect* it (deselection is not a skip, which keeps the no-skip
#: gate honest); where numba is selected but absent, the fixture skips.
BACKEND_PARAMS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("numba", id="numba", marks=pytest.mark.backend_numba),
]


@pytest.fixture(params=BACKEND_PARAMS)
def backend_name(request):
    """Name of each installed compiled-array backend, in turn."""
    if request.param != "numpy":
        from repro.backend import available_backends

        if request.param not in available_backends():
            pytest.skip(f"backend {request.param!r} is not installed")
    return request.param


@pytest.fixture
def assert_backend_close(backend_name):
    """Backend-aware comparison: bit-identity on numpy, pinned tolerance
    on compiled backends (whose arithmetic may reassociate)."""
    def check(result, reference):
        result = np.asarray(result)
        reference = np.asarray(reference)
        if backend_name == "numpy":
            np.testing.assert_array_equal(result, reference)
        else:
            np.testing.assert_allclose(result, reference,
                                       rtol=1e-9, atol=1e-12)
    return check


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sir_model():
    """The paper's SIR model with the Section V parameters."""
    return make_sir_model()


@pytest.fixture
def sir_narrow():
    """SIR with a narrow parameter interval (fast/tight bounds)."""
    return make_sir_model(theta_max=2.0)


@pytest.fixture
def sir_full():
    return make_sir_full_model()


@pytest.fixture
def gps_poisson():
    return make_gps_poisson_model()


@pytest.fixture
def gps_map():
    return make_gps_map_model()


@pytest.fixture
def bike_model():
    return make_bike_station_model()


@pytest.fixture
def seir_model():
    return make_seir_model()


@pytest.fixture
def sir_x0():
    return np.array([0.7, 0.3])
