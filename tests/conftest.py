"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.models import (
    make_bike_station_model,
    make_gps_map_model,
    make_gps_poisson_model,
    make_seir_model,
    make_sir_full_model,
    make_sir_model,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sir_model():
    """The paper's SIR model with the Section V parameters."""
    return make_sir_model()


@pytest.fixture
def sir_narrow():
    """SIR with a narrow parameter interval (fast/tight bounds)."""
    return make_sir_model(theta_max=2.0)


@pytest.fixture
def sir_full():
    return make_sir_full_model()


@pytest.fixture
def gps_poisson():
    return make_gps_poisson_model()


@pytest.fixture
def gps_map():
    return make_gps_map_model()


@pytest.fixture
def bike_model():
    return make_bike_station_model()


@pytest.fixture
def seir_model():
    return make_seir_model()


@pytest.fixture
def sir_x0():
    return np.array([0.7, 0.3])
