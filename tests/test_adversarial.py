"""Tests for the Pontryagin-to-simulation bridge and stationary DTMC bounds."""

import numpy as np
import pytest

from repro.bounds import extremal_trajectory
from repro.ctmc import IntervalDTMC
from repro.simulation import policy_from_controls, validate_bound_by_simulation


class TestPolicyFromControls:
    @pytest.fixture(scope="class")
    def sir_extremal(self):
        from repro.models import make_sir_model

        model = make_sir_model()
        result = extremal_trajectory(model, [0.7, 0.3], 3.0, [0.0, 1.0],
                                     n_steps=300)
        return model, result

    def test_bang_bang_collapses_to_few_pieces(self, sir_extremal):
        _, result = sir_extremal
        policy = policy_from_controls(result)
        assert len(policy._thetas) <= 5

    def test_policy_replays_control_signal(self, sir_extremal):
        _, result = sir_extremal
        policy = policy_from_controls(result)
        # Probe strictly inside each schedule piece, where the policy's
        # right-continuous lookup and control_at's left-continuous one
        # must agree (exact switch knots are the documented exception).
        starts = list(policy._starts) + [float(result.times[-1])]
        for left, right in zip(starts[:-1], starts[1:]):
            t = 0.5 * (left + right)
            np.testing.assert_allclose(
                policy.theta(t, None), result.control_at(t), atol=1e-9
            )

    def test_policy_and_control_at_conventions_at_knots(self, sir_extremal):
        """At a switch knot the policy applies the *new* piece while
        control_at reports the left limit — pin both sides explicitly."""
        _, result = sir_extremal
        policy = policy_from_controls(result)
        assert len(policy._starts) >= 2, "expected at least one switch"
        for k in range(1, len(policy._starts)):
            t_switch = float(policy._starts[k])
            np.testing.assert_allclose(policy.theta(t_switch, None),
                                       policy._thetas[k])
            np.testing.assert_allclose(result.control_at(t_switch),
                                       policy._thetas[k - 1])

    def test_replay_through_inclusion_attains_value(self, sir_extremal):
        from repro.inclusion import ParametricInclusion

        model, result = sir_extremal
        policy = policy_from_controls(result)
        inclusion = ParametricInclusion(model)
        schedule = list(zip(policy._starts, policy._thetas))
        replay = inclusion.solve_piecewise(schedule, [0.7, 0.3], 3.0)
        assert replay.final_state[1] == pytest.approx(result.value, abs=2e-3)

    @pytest.mark.slow
    def test_simulation_approaches_bound(self, sir_extremal):
        model, result = sir_extremal
        out = validate_bound_by_simulation(model, result,
                                           population_size=5000, n_runs=4,
                                           seed=11)
        # The bound is approached from below, within a CLT-scale gap.
        assert out["gap"] > -0.01
        assert out["gap"] < 0.05
        assert out["simulated_std"] < 0.05

    def test_validation_rejects_bad_sizes(self, sir_extremal):
        model, result = sir_extremal
        with pytest.raises(ValueError):
            validate_bound_by_simulation(model, result, population_size=0)


class TestStationaryExpectationBounds:
    def test_precise_chain_matches_stationary_distribution(self):
        p = np.array([[0.7, 0.3], [0.4, 0.6]])
        dtmc = IntervalDTMC(p, p)
        # pi = (4/7, 3/7) for this chain.
        lo, hi = dtmc.stationary_expectation_bounds([1.0, 0.0])
        assert lo == pytest.approx(4.0 / 7.0, abs=1e-8)
        assert hi == pytest.approx(4.0 / 7.0, abs=1e-8)

    def test_interval_chain_brackets_corner_chains(self):
        lower = np.array([[0.65, 0.25], [0.35, 0.55]])
        upper = np.array([[0.75, 0.35], [0.45, 0.65]])
        dtmc = IntervalDTMC(lower, upper)
        lo, hi = dtmc.stationary_expectation_bounds([1.0, 0.0])
        assert lo < hi
        # Stationary prob of state 0 for precise members must fall inside.
        rng = np.random.default_rng(0)
        for _ in range(20):
            rows = []
            for i in range(2):
                p0 = rng.uniform(lower[i, 0], upper[i, 0])
                rows.append([p0, 1.0 - p0])
            p = np.array(rows)
            if np.any(p < lower - 1e-12) or np.any(p > upper + 1e-12):
                continue
            # stationary of 2-state chain: pi_0 = p10 / (p01 + p10)
            pi0 = p[1, 0] / (p[0, 1] + p[1, 0])
            assert lo - 1e-8 <= pi0 <= hi + 1e-8

    def test_periodic_chain_detected(self):
        flip = np.array([[0.0, 1.0], [1.0, 0.0]])
        dtmc = IntervalDTMC(flip, flip)
        with pytest.raises(RuntimeError):
            dtmc.stationary_expectation_bounds([1.0, 0.0], max_iter=500)
