"""Tests for mean-field limit construction and scaling diagnostics."""

import numpy as np
import pytest

from repro.meanfield import (
    mean_field_inclusion,
    mean_field_ode,
    verify_population_scaling,
)
from repro.models import make_sir_model
from repro.params import Singleton
from repro.population import PopulationModel, Transition
from repro.simulation import ConstantPolicy, simulate


class TestMeanFieldOde:
    def test_field_evaluates_drift(self, sir_model):
        f = mean_field_ode(sir_model, [5.0])
        np.testing.assert_allclose(
            f(0.0, np.array([0.7, 0.3])), sir_model.drift([0.7, 0.3], [5.0])
        )

    def test_inadmissible_theta_rejected(self, sir_model):
        with pytest.raises(ValueError):
            mean_field_ode(sir_model, [0.0])

    def test_singleton_theta_is_kurtz_limit(self):
        model = make_sir_model(theta_min=5.0, theta_max=5.0)
        f = mean_field_ode(model, [5.0])
        assert callable(f)


class TestScalingDiagnostics:
    def test_sir_satisfies_definition_4(self, sir_model):
        report = verify_population_scaling(sir_model, sizes=(10, 100, 1000))
        assert report.uniformizable()
        assert report.jumps_vanish()
        assert report.drift_bounded()
        assert report.all_conditions_hold()

    def test_gps_satisfies_definition_4(self, gps_poisson):
        report = verify_population_scaling(gps_poisson, sizes=(10, 100, 1000))
        assert report.all_conditions_hold()

    def test_jump_moment_decays_like_n_to_eps(self, sir_model):
        report = verify_population_scaling(
            sir_model, sizes=(10, 1000), epsilon=1.0
        )
        # With eps = 1 the moment scales as 1/N: factor ~100 between sizes.
        ratio = report.jump_moments[0] / report.jump_moments[-1]
        assert ratio == pytest.approx(100.0, rel=0.01)

    def test_badly_scaled_model_detected(self):
        # A rate that grows with density^0 but jump of O(1) *in density*:
        # achieved by declaring a huge change vector, violating (ii).
        bad = PopulationModel(
            "bad", ("x",),
            [Transition("boom", [1000.0], lambda x, th: 1.0)],
            Singleton([1.0]),
            state_bounds=([0.0], [1.0]),
        )
        report = verify_population_scaling(bad, sizes=(10, 100))
        # Jumps still vanish in N (density scaling), but drift is huge —
        # the report exposes the magnitude for the caller to judge.
        assert report.drift_norms[0] == pytest.approx(1000.0)

    def test_requires_two_sizes(self, sir_model):
        with pytest.raises(ValueError):
            verify_population_scaling(sir_model, sizes=(10,))

    def test_requires_positive_epsilon(self, sir_model):
        with pytest.raises(ValueError):
            verify_population_scaling(sir_model, sizes=(10, 100), epsilon=0.0)


class TestConvergenceToMeanField:
    """Theorem 1 / Corollary 1, checked stochastically at finite N."""

    @pytest.mark.slow
    def test_ssa_converges_to_ode_for_constant_theta(self, sir_model):
        # Uncertain scenario: SSA with frozen theta vs the Kurtz ODE.
        inc = mean_field_inclusion(sir_model)
        ode = inc.solve_constant([5.0], [0.7, 0.3], (0.0, 2.0),
                                 t_eval=np.linspace(0, 2, 21))
        errors = []
        for n in (100, 10000):
            rng = np.random.default_rng(42)
            pop = sir_model.instantiate(n, [0.7, 0.3])
            run = simulate(pop, ConstantPolicy([5.0]), 2.0, rng=rng,
                           n_samples=21)
            errors.append(float(np.max(np.abs(run.states - ode.states))))
        assert errors[1] < errors[0]
        assert errors[1] < 0.05

    @pytest.mark.slow
    def test_ssa_stays_in_reachable_tube(self, sir_model):
        # Imprecise scenario: any policy's path must stay near the
        # inclusion's reachable envelope (checked against coordinate
        # bounds from the Pontryagin method at a few horizons).
        from repro.bounds import pontryagin_transient_bounds
        from repro.simulation import RandomJumpPolicy

        horizons = np.array([0.5, 1.0, 2.0])
        bounds = pontryagin_transient_bounds(
            sir_model, [0.7, 0.3], horizons, observables=["I"],
            steps_per_unit=60,
        )
        rng = np.random.default_rng(7)
        pop = sir_model.instantiate(10000, [0.7, 0.3])
        policy = RandomJumpPolicy(
            sir_model.theta_set, rate_fn=lambda t, x: 5.0 * x[1]
        )
        run = simulate(pop, policy, 2.0, rng=rng, n_samples=201)
        slack = 0.03  # finite-N fluctuation allowance
        for k, horizon in enumerate(horizons):
            i_val = run.states[np.argmin(np.abs(run.times - horizon)), 1]
            assert bounds.lower["I"][k] - slack <= i_val
            assert i_val <= bounds.upper["I"][k] + slack
