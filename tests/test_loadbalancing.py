"""Tests for the power-of-d-choices extension model."""

import numpy as np
import pytest

from repro.bounds import extremal_trajectory, uncertain_envelope
from repro.models import make_power_of_d_model
from repro.ode import solve_ode
from repro.population import check_affine_decomposition, numeric_jacobian


@pytest.fixture(scope="module")
def pod2():
    return make_power_of_d_model(buffer_depth=6)


MONOTONE_STATE = np.array([0.8, 0.5, 0.3, 0.15, 0.05, 0.01])


class TestStructure:
    def test_dimensions(self, pod2):
        assert pod2.dim == 6
        assert pod2.theta_dim == 1
        assert len(pod2.transitions) == 12  # one arrival + service per level

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_power_of_d_model(buffer_depth=0)
        with pytest.raises(ValueError):
            make_power_of_d_model(choices=0)
        with pytest.raises(ValueError):
            make_power_of_d_model(mu=0.0)

    def test_affine_decomposition(self, pod2, rng):
        assert check_affine_decomposition(pod2, MONOTONE_STATE, rng=rng)

    def test_jacobian_matches_numeric(self, pod2):
        np.testing.assert_allclose(
            pod2.jacobian_x(MONOTONE_STATE, [0.8]),
            numeric_jacobian(lambda y: pod2.drift(y, [0.8]), MONOTONE_STATE),
            atol=1e-6,
        )

    def test_drift_formula(self, pod2):
        # dx_k = lam (x_{k-1}^2 - x_k^2) - mu (x_k - x_{k+1}).
        x = MONOTONE_STATE
        lam = 0.8
        drift = pod2.drift(x, [lam])
        x_pad = np.concatenate([[1.0], x, [0.0]])
        for k in range(1, 7):
            expected = lam * (x_pad[k - 1] ** 2 - x_pad[k] ** 2) - (
                x_pad[k] - x_pad[k + 1]
            )
            assert drift[k - 1] == pytest.approx(expected)


class TestDynamics:
    def test_fixed_point_matches_tail_law(self, pod2):
        """The supermarket model's double-exponential tail rho^(2^k - 1)."""
        rho = 0.9
        traj = solve_ode(pod2.vector_field([rho]), MONOTONE_STATE, (0, 80))
        tail = traj.final_state
        theory = np.array([rho ** (2**k - 1) for k in range(1, 7)])
        # Truncation distorts only the deepest levels.
        np.testing.assert_allclose(tail[:4], theory[:4], atol=5e-3)

    def test_random_routing_matches_mm1_tail(self):
        """d = 1 gives the M/M/1 geometric tail rho^k."""
        model = make_power_of_d_model(buffer_depth=8, choices=1,
                                      arrival_bounds=(0.5, 0.7))
        x0 = np.full(8, 0.1)
        traj = solve_ode(model.vector_field([0.6]), x0, (0, 200))
        theory = np.array([0.6**k for k in range(1, 9)])
        np.testing.assert_allclose(traj.final_state[:5], theory[:5], atol=1e-2)

    def test_tail_monotone_along_trajectory(self, pod2):
        traj = solve_ode(pod2.vector_field([0.9]), MONOTONE_STATE, (0, 20),
                         t_eval=np.linspace(0, 20, 21))
        for state in traj.states:
            assert np.all(np.diff(state) <= 1e-9)
            assert np.all(state >= -1e-9)
            assert np.all(state <= 1.0 + 1e-9)

    def test_power_of_two_beats_random_routing(self):
        """The classical result: d = 2 yields much shorter queues."""
        # Depth 10 so the geometric M/M/1 tail is not truncated away.
        x0 = np.full(10, 0.1)
        pod2 = make_power_of_d_model(buffer_depth=10, choices=2,
                                     arrival_bounds=(0.5, 0.9))
        pod1 = make_power_of_d_model(buffer_depth=10, choices=1,
                                     arrival_bounds=(0.5, 0.9))
        t2 = solve_ode(pod2.vector_field([0.9]), x0, (0, 100))
        t1 = solve_ode(pod1.vector_field([0.9]), x0, (0, 100))
        q2 = t2.final_state.sum()  # mean queue length
        q1 = t1.final_state.sum()
        # Truncation at depth 10 clips the geometric d = 1 tail (lost
        # arrivals at full buffers), so the classical exponential-vs-
        # double-exponential gap shows as a ~40% reduction here.
        assert q2 < 0.65 * q1


class TestImpreciseBounds:
    def test_imprecise_contains_uncertain(self, pod2):
        x0 = np.full(6, 0.1)
        horizon = 3.0
        weights = pod2.observables["mean_queue_length"]
        res = extremal_trajectory(pod2, x0, horizon, weights, n_steps=150)
        env = uncertain_envelope(pod2, x0, np.array([0.0, horizon]),
                                 resolution=9,
                                 observables=["mean_queue_length"])
        assert res.value >= env.upper["mean_queue_length"][-1] - 1e-6

    def test_busy_fraction_bounded_by_one(self, pod2):
        x0 = np.full(6, 0.1)
        res = extremal_trajectory(pod2, x0, 5.0,
                                  pod2.observables["busy_fraction"],
                                  n_steps=150)
        assert res.value <= 1.0 + 1e-6
