"""Tests for the interval-width sensitivity study (repro.analysis.sensitivity)."""

import numpy as np
import pytest

from repro.analysis import interval_width_sensitivity
from repro.models import make_sir_model


@pytest.fixture(scope="module")
def sir_study():
    # theta_max in {2, 5, 6}: the Figure-4 ladder including the
    # hull-divergence case at the top.
    return interval_width_sensitivity(
        lambda w: make_sir_model(theta_max=1.0 + w),
        widths=[1.0, 4.0, 5.0],
        x0=[0.7, 0.3],
        horizon=6.0,
        observable_index=1,
        n_steps=120,
        sweep_resolution=7,
    )


class TestWidthSensitivity:
    def test_all_methods_recorded(self, sir_study):
        assert len(sir_study.hull) == 3
        assert len(sir_study.pontryagin) == 3
        assert len(sir_study.uncertain) == 3

    def test_soundness_ordering(self, sir_study):
        """uncertain <= pontryagin <= hull width, for every width."""
        for k in range(3):
            assert sir_study.uncertain[k] <= sir_study.pontryagin[k] + 1e-6
            assert sir_study.pontryagin[k] <= sir_study.hull[k] + 1e-6

    def test_widths_monotone_in_theta_range(self, sir_study):
        assert np.all(np.diff(sir_study.pontryagin) > -1e-9)
        assert np.all(np.diff(sir_study.hull) > -1e-9)

    def test_hull_degrades_superlinearly(self, sir_study):
        """The paper's Figure 4/5 observation, quantified."""
        assert sir_study.degradation_is_superlinear()

    def test_ratio_helper(self, sir_study):
        ratios = sir_study.hull_over_pontryagin()
        assert ratios.shape == (3,)
        assert np.all(ratios >= 1.0 - 1e-6)

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            interval_width_sensitivity(
                lambda w: make_sir_model(theta_max=1.0 + w),
                widths=[], x0=[0.7, 0.3], horizon=1.0,
            )
