"""Tests for the exact finite-CTMC substrate (repro.ctmc)."""

import numpy as np
import pytest

from repro.ctmc import (
    ImpreciseCTMC,
    KolmogorovSystem,
    enumerate_lattice,
    imprecise_reward_bounds,
    uncertain_reward_envelope,
)
from repro.models import make_bike_station_model, make_sir_full_model
from repro.params import Interval
from repro.population import PopulationModel, Transition


@pytest.fixture(scope="module")
def bike_chain():
    model = make_bike_station_model()
    return ImpreciseCTMC(model.instantiate(10, [0.5]))


class TestEnumeration:
    def test_bike_lattice_full_line(self):
        model = make_bike_station_model()
        pop = model.instantiate(10, [0.5])
        states, index = enumerate_lattice(pop)
        assert states.shape == (11, 1)
        assert index[(5,)] == 0  # initial state first
        assert set(index) == {(k,) for k in range(11)}

    def test_sir_lattice_simplex(self):
        model = make_sir_full_model()
        pop = model.instantiate(6, [0.5, 0.5, 0.0])
        states, _ = enumerate_lattice(pop)
        # All (s, i, r) with s+i+r = 6: C(8, 2) = 28 states.
        assert states.shape[0] == 28
        assert np.all(states.sum(axis=1) == 6)

    def test_max_states_enforced(self):
        model = make_sir_full_model()
        pop = model.instantiate(60, [0.5, 0.5, 0.0])
        with pytest.raises(RuntimeError):
            enumerate_lattice(pop, max_states=100)


class TestGenerators:
    def test_rows_sum_to_zero(self, bike_chain):
        q = bike_chain.generator([1.0, 1.1]).toarray()
        np.testing.assert_allclose(q.sum(axis=1), 0.0, atol=1e-12)

    def test_off_diagonals_nonnegative(self, bike_chain):
        q = bike_chain.generator([0.9, 1.1]).toarray()
        off = q - np.diag(np.diag(q))
        assert np.all(off >= 0)

    def test_birth_death_structure(self, bike_chain):
        q = bike_chain.generator([0.8, 0.9]).toarray()
        n = q.shape[0]
        for i in range(n):
            for j in range(n):
                counts_i = bike_chain.states[i, 0]
                counts_j = bike_chain.states[j, 0]
                if abs(counts_i - counts_j) > 1:
                    assert q[i, j] == 0.0

    def test_affine_parts_verified(self, bike_chain):
        q0, parts = bike_chain.affine_generator_parts()
        assert len(parts) == 2
        theta = np.array([1.0, 0.95])
        reconstructed = q0 + parts[0] * theta[0] + parts[1] * theta[1]
        direct = bike_chain.generator(theta)
        assert abs(reconstructed - direct).max() < 1e-10

    def test_nonaffine_rates_detected(self):
        tr_up = Transition("up", [1.0], lambda x, th: th[0] ** 2 * (1 - x[0]))
        tr_down = Transition("down", [-1.0], lambda x, th: x[0])
        model = PopulationModel("sq", ("x",), [tr_up, tr_down],
                                Interval(0.5, 2.0))
        chain = ImpreciseCTMC(model.instantiate(5, [0.4]))
        with pytest.raises(ValueError):
            chain.affine_generator_parts()


class TestTransient:
    def test_distribution_normalised(self, bike_chain):
        p = bike_chain.transient_distribution([1.0, 1.0], 2.0)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= -1e-12)

    def test_t_zero_identity(self, bike_chain):
        p = bike_chain.transient_distribution([1.0, 1.0], 0.0)
        np.testing.assert_allclose(p, bike_chain.initial_distribution)

    def test_uniformization_matches_expm(self, bike_chain):
        for t in (0.5, 2.0, 5.0):
            a = bike_chain.transient_distribution([1.0, 0.9], t, method="expm")
            b = bike_chain.transient_distribution([1.0, 0.9], t,
                                                  method="uniformization")
            np.testing.assert_allclose(a, b, atol=1e-9)

    def test_unknown_method_rejected(self, bike_chain):
        with pytest.raises(ValueError):
            bike_chain.transient_distribution([1.0, 1.0], 1.0, method="magic")

    def test_invalid_p0_rejected(self, bike_chain):
        bad = np.ones(bike_chain.n_states)
        with pytest.raises(ValueError):
            bike_chain.transient_distribution([1.0, 1.0], 1.0, p0=bad)

    def test_negative_time_rejected(self, bike_chain):
        with pytest.raises(ValueError):
            bike_chain.transient_distribution([1.0, 1.0], -1.0)


class TestStationary:
    def test_balanced_birth_death_uniform(self, bike_chain):
        # Equal arrival/return rates -> uniform stationary distribution.
        pi = bike_chain.stationary_distribution([1.0, 1.0])
        np.testing.assert_allclose(pi, np.full(11, 1.0 / 11.0), atol=1e-9)

    def test_detailed_balance_geometric(self, bike_chain):
        # Birth-death with ratio rho: pi_k proportional to rho^k.
        theta = [1.0, 0.5]  # departures at 1, returns at 0.5 -> rho = 0.5
        pi = bike_chain.stationary_distribution(theta)
        # Order pi by state count.
        order = np.argsort(bike_chain.states[:, 0])
        ordered = pi[order]
        ratios = ordered[1:] / ordered[:-1]
        np.testing.assert_allclose(ratios, 0.5, atol=1e-6)

    def test_transient_converges_to_stationary(self, bike_chain):
        theta = [0.8, 1.0]
        pi = bike_chain.stationary_distribution(theta)
        p = bike_chain.transient_distribution(theta, 200.0)
        np.testing.assert_allclose(p, pi, atol=1e-6)

    def test_expected_observable(self, bike_chain):
        pi = bike_chain.stationary_distribution([1.0, 1.0])
        mean_occ = bike_chain.expected_observable(pi, [1.0])
        assert mean_occ == pytest.approx(0.5, abs=1e-9)


class TestKolmogorovSystem:
    def test_adapter_interface(self, bike_chain):
        system = KolmogorovSystem(bike_chain)
        assert system.dim == 11
        assert system.theta_dim == 2
        assert system.is_affine

    def test_drift_matches_master_equation(self, bike_chain):
        system = KolmogorovSystem(bike_chain)
        p = bike_chain.initial_distribution
        theta = np.array([1.0, 0.9])
        expected = bike_chain.generator(theta).T @ p
        np.testing.assert_allclose(system.drift(p, theta), expected, atol=1e-12)

    def test_affine_parts_match_drift(self, bike_chain, rng):
        system = KolmogorovSystem(bike_chain)
        p = rng.dirichlet(np.ones(11))
        g0, big_g = system.affine_parts(p)
        theta = np.array([0.95, 1.05])
        np.testing.assert_allclose(
            g0 + big_g @ theta, system.drift(p, theta), atol=1e-12
        )

    def test_jacobian_is_generator_transpose(self, bike_chain):
        system = KolmogorovSystem(bike_chain)
        theta = np.array([1.0, 1.0])
        jac = system.jacobian_x(bike_chain.initial_distribution, theta)
        np.testing.assert_allclose(
            jac, bike_chain.generator(theta).T.toarray(), atol=1e-12
        )

    def test_probability_conserved_by_drift(self, bike_chain, rng):
        system = KolmogorovSystem(bike_chain)
        p = rng.dirichlet(np.ones(11))
        drift = system.drift(p, [1.1, 0.9])
        assert drift.sum() == pytest.approx(0.0, abs=1e-12)

    def test_dense_generator_parts_accepted(self, bike_chain, rng):
        """Regression: duck-typed chains with dense affine parts used to
        crash on the assumed ``.tocsr()``."""

        class DenseChain:
            model = bike_chain.model
            states = bike_chain.states
            n_states = bike_chain.n_states
            initial_distribution = bike_chain.initial_distribution

            @staticmethod
            def affine_generator_parts():
                q0, parts = bike_chain.affine_generator_parts()
                return q0.toarray(), [part.toarray() for part in parts]

        dense = KolmogorovSystem(DenseChain())
        sparse_sys = KolmogorovSystem(bike_chain)
        p = rng.dirichlet(np.ones(11))
        theta = np.array([1.05, 0.95])
        np.testing.assert_array_equal(
            dense.drift(p, theta), sparse_sys.drift(p, theta)
        )
        np.testing.assert_array_equal(
            dense.jacobian_x(p, theta), sparse_sys.jacobian_x(p, theta)
        )


class TestRewardBounds:
    def test_imprecise_brackets_uncertain(self, bike_chain):
        reward = (bike_chain.states[:, 0] == 0).astype(float)
        res_max = imprecise_reward_bounds(bike_chain, reward, 3.0,
                                          maximize=True, n_steps=100)
        res_min = imprecise_reward_bounds(bike_chain, reward, 3.0,
                                          maximize=False, n_steps=100)
        _, lo, hi = uncertain_reward_envelope(
            bike_chain, reward, np.linspace(0, 3, 4), resolution=5
        )
        assert res_min.value <= lo[-1] + 1e-6
        assert res_max.value >= hi[-1] - 1e-6
        assert 0.0 <= res_min.value <= res_max.value <= 1.0

    def test_reward_shape_validated(self, bike_chain):
        with pytest.raises(ValueError):
            imprecise_reward_bounds(bike_chain, np.ones(3), 1.0)

    def test_probability_reward_stays_in_unit_interval(self, bike_chain):
        reward = (bike_chain.states[:, 0] >= 8).astype(float)
        res = imprecise_reward_bounds(bike_chain, reward, 2.0,
                                      maximize=True, n_steps=100)
        assert -1e-6 <= res.value <= 1.0 + 1e-6

    def test_uncertain_envelope_ordering(self, bike_chain):
        reward = bike_chain.densities()[:, 0]  # mean occupancy
        times, lo, hi = uncertain_reward_envelope(
            bike_chain, reward, np.linspace(0, 2, 5), resolution=4
        )
        assert np.all(lo <= hi + 1e-12)
        assert lo[0] == pytest.approx(hi[0])  # deterministic start

    def test_uncertain_envelope_degenerate_horizon(self, bike_chain):
        """Regression: ``t_eval[0] == t_eval[-1]`` used to crash inside
        ``solve_ivp``; it must return the constant ``p0 . r`` envelope."""
        reward = bike_chain.densities()[:, 0]
        p0 = bike_chain.initial_distribution
        times, lo, hi = uncertain_reward_envelope(
            bike_chain, reward, [1.5, 1.5], resolution=3
        )
        expected = float(p0 @ reward)
        np.testing.assert_allclose(lo, expected)
        np.testing.assert_allclose(hi, expected)
        assert times.shape == (2,)

    def test_uncertain_envelope_descending_grid_rejected(self, bike_chain):
        """Regression: a descending grid used to integrate the master
        equation backward, silently exploding to astronomic values."""
        reward = bike_chain.densities()[:, 0]
        with pytest.raises(ValueError, match="non-decreasing"):
            uncertain_reward_envelope(
                bike_chain, reward, [2.0, 1.0, 0.0], resolution=3
            )

    def test_uncertain_envelope_reward_shape_validated(self, bike_chain):
        with pytest.raises(ValueError):
            uncertain_reward_envelope(bike_chain, np.ones(3),
                                      np.linspace(0, 1, 3))
