"""Tests for the parametric differential inclusion (repro.inclusion)."""

import numpy as np
import pytest

from repro.inclusion import ParametricInclusion, euler_selection_solve
from repro.meanfield import mean_field_inclusion


@pytest.fixture
def sir_inclusion(sir_model):
    return ParametricInclusion(sir_model)


class TestVelocityQueries:
    def test_velocity_requires_admissible_theta(self, sir_inclusion):
        with pytest.raises(ValueError):
            sir_inclusion.velocity([0.5, 0.2], [99.0])

    def test_velocity_matches_drift(self, sir_inclusion, sir_model):
        x = np.array([0.5, 0.2])
        np.testing.assert_allclose(
            sir_inclusion.velocity(x, [4.0]), sir_model.drift(x, [4.0])
        )

    def test_support_dominates_members(self, sir_inclusion, sir_model, rng):
        x = np.array([0.5, 0.2])
        p = np.array([0.3, -0.9])
        h = sir_inclusion.support(x, p)
        for theta in sir_model.theta_set.sample(rng, 30):
            assert p @ sir_model.drift(x, theta) <= h + 1e-9

    def test_contains_velocity_accepts_members(self, sir_inclusion, sir_model, rng):
        x = np.array([0.5, 0.2])
        for theta in sir_model.theta_set.sample(rng, 10):
            assert sir_inclusion.contains_velocity(x, sir_model.drift(x, theta))

    def test_contains_velocity_accepts_convex_combinations(
        self, sir_inclusion, sir_model
    ):
        x = np.array([0.5, 0.2])
        v = 0.5 * sir_model.drift(x, [1.0]) + 0.5 * sir_model.drift(x, [10.0])
        assert sir_inclusion.contains_velocity(x, v)

    def test_contains_velocity_rejects_outsiders(self, sir_inclusion):
        x = np.array([0.5, 0.2])
        assert not sir_inclusion.contains_velocity(x, np.array([10.0, 10.0]))

    def test_velocity_envelope(self, sir_inclusion):
        lo, hi = sir_inclusion.velocity_envelope(np.array([0.5, 0.2]))
        assert np.all(lo <= hi)


class TestWitnessSolutions:
    def test_solve_constant_requires_admissible_theta(self, sir_inclusion):
        with pytest.raises(ValueError):
            sir_inclusion.solve_constant([0.0], [0.7, 0.3], (0, 1))

    def test_solve_constant_matches_ode(self, sir_inclusion, sir_model):
        traj = sir_inclusion.solve_constant([5.0], [0.7, 0.3], (0, 2))
        # residual check: derivative along trajectory equals drift.
        mid = traj(1.0)
        assert np.isfinite(mid).all()
        assert traj.final_state[1] < 0.3  # infection declines for theta=5

    def test_solve_piecewise_continuity(self, sir_inclusion):
        schedule = [(0.0, [1.0]), (1.0, [10.0])]
        traj = sir_inclusion.solve_piecewise(schedule, [0.7, 0.3], 2.0)
        assert traj.times[0] == 0.0
        assert traj.times[-1] == pytest.approx(2.0)
        # times strictly increasing
        assert np.all(np.diff(traj.times) > 0)

    def test_solve_piecewise_matches_constant(self, sir_inclusion):
        a = sir_inclusion.solve_piecewise([(0.0, [5.0])], [0.7, 0.3], 2.0)
        b = sir_inclusion.solve_constant([5.0], [0.7, 0.3], (0, 2),
                                         t_eval=a.times)
        np.testing.assert_allclose(a.final_state, b.final_state, atol=1e-6)

    def test_solve_piecewise_validation(self, sir_inclusion):
        with pytest.raises(ValueError):
            sir_inclusion.solve_piecewise([], [0.7, 0.3], 1.0)
        with pytest.raises(ValueError):
            sir_inclusion.solve_piecewise(
                [(1.0, [5.0]), (0.0, [5.0])], [0.7, 0.3], 2.0
            )
        with pytest.raises(ValueError):
            sir_inclusion.solve_piecewise([(0.0, [50.0])], [0.7, 0.3], 1.0)

    def test_solve_feedback_projects_theta(self, sir_inclusion):
        # Selector returns inadmissible values; solver must project.
        traj = sir_inclusion.solve_feedback(
            lambda t, x: [100.0], [0.7, 0.3], (0.0, 1.0)
        )
        assert np.isfinite(traj.states).all()

    def test_feedback_matches_constant_for_constant_selector(self, sir_inclusion):
        a = sir_inclusion.solve_feedback(lambda t, x: [5.0], [0.7, 0.3], (0, 2))
        b = sir_inclusion.solve_constant([5.0], [0.7, 0.3], (0, 2))
        np.testing.assert_allclose(a.final_state, b.final_state, atol=1e-5)

    def test_extreme_velocity_solution_upper_bounds_constant(self, sir_inclusion):
        greedy = sir_inclusion.extreme_velocity_solution(
            [0.0, 1.0], [0.7, 0.3], (0.0, 1.0)
        )
        const = sir_inclusion.solve_constant([10.0], [0.7, 0.3], (0, 1))
        # Greedy maximising I pointwise dominates any constant at small t.
        assert greedy(0.2)[1] >= const(0.2)[1] - 1e-6


class TestEulerSelection:
    def test_matches_rk4_for_smooth_selector(self, sir_inclusion):
        grid = np.linspace(0.0, 1.0, 2001)
        euler = euler_selection_solve(
            sir_inclusion, lambda t, x: [5.0], [0.7, 0.3], grid
        )
        rk4 = sir_inclusion.solve_constant([5.0], [0.7, 0.3], (0, 1))
        np.testing.assert_allclose(euler.final_state, rk4.final_state, atol=2e-3)

    def test_grid_validation(self, sir_inclusion):
        with pytest.raises(ValueError):
            euler_selection_solve(sir_inclusion, lambda t, x: [5.0],
                                  [0.7, 0.3], [0.0])

    def test_selector_projection(self, sir_inclusion):
        grid = np.linspace(0.0, 0.5, 101)
        traj = euler_selection_solve(
            sir_inclusion, lambda t, x: [-5.0], [0.7, 0.3], grid
        )
        assert np.isfinite(traj.states).all()


class TestMeanFieldConstruction:
    def test_mean_field_inclusion_roundtrip(self, sir_model):
        inc = mean_field_inclusion(sir_model)
        assert isinstance(inc, ParametricInclusion)
        assert inc.dim == 2
        assert inc.extremizer.method == "affine"

    def test_mean_field_inclusion_method_override(self, sir_model):
        inc = mean_field_inclusion(sir_model, method="grid", grid_resolution=5)
        assert inc.extremizer.method == "grid"

    def test_repr(self, sir_inclusion):
        assert "sir_reduced" in repr(sir_inclusion)
